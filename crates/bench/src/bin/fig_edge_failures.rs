//! E13 (extension) — robustness to incomplete topologies
//! (towards the paper's open question 2: general graphs).
//!
//! The protocols are stated for complete networks, but their referee
//! redundancy (Lemma 3: every candidate pair shares *many* referees in
//! expectation) buys real slack: here we kill each edge of the complete
//! graph independently with probability `p` — messages across dead edges
//! silently vanish — and measure how far `p` can rise before the
//! guarantees crumble, with crash faults still active on top.
//!
//! ```sh
//! cargo run --release -p ftc-bench --bin fig_edge_failures -- [--jobs N] [--trials N] [--seed N] [--smoke]
//! ```

use ftc_bench::{fmt_count, print_table, ExpOpts};
use ftc_core::agreement::{AgreeNode, AgreeOutcome};
use ftc_core::leader_election::{LeNode, LeOutcome};
use ftc_core::params::Params;
use ftc_sim::prelude::*;

const ALPHA: f64 = 0.5;

fn main() {
    let opts = ExpOpts::parse();
    let n = opts.pick(2048u32, 256);
    let trials = opts.trials(16);
    let params = Params::new(n, ALPHA).expect("valid");
    let f = params.max_faults();
    println!(
        "E13: edge failures on top of {f} crash faults, n = {n}, alpha = {ALPHA}, {trials} trials ({})",
        opts.banner()
    );
    println!();

    let mut rows = Vec::new();
    for &p in &[0.0, 0.05, 0.2, 0.4, 0.6, 0.8, 0.9] {
        let le_batch = ParRunner::new(TrialPlan::new(opts.seed(0xE13), trials).jobs(opts.jobs))
            .run(|_, seed| {
                let mut cfg = SimConfig::new(n)
                    .seed(seed)
                    .max_rounds(params.le_round_budget());
                if p > 0.0 {
                    cfg = cfg.edge_failure_prob(p);
                }
                let mut adv = RandomCrash::new(f, 40);
                let r = run(&cfg, |_| LeNode::new(params.clone()), &mut adv);
                (LeOutcome::evaluate(&r).success, r.metrics.msgs_lost_edges)
            });
        let le_ok = le_batch.values().filter(|(ok, _)| *ok).count();
        let lost: u64 = le_batch.values().map(|(_, l)| l).sum();

        let ag_batch = ParRunner::new(TrialPlan::new(opts.seed(0x13E), trials).jobs(opts.jobs))
            .run(|_, seed| {
                let mut cfg = SimConfig::new(n)
                    .seed(seed)
                    .max_rounds(params.agreement_round_budget());
                if p > 0.0 {
                    cfg = cfg.edge_failure_prob(p);
                }
                let mut adv = RandomCrash::new(f, 20);
                let r = run(
                    &cfg,
                    |id| AgreeNode::new(params.clone(), id.0 % 8 == 0),
                    &mut adv,
                );
                AgreeOutcome::evaluate(&r).success
            });
        let ag_ok = ag_batch.values().filter(|ok| **ok).count();

        rows.push(vec![
            format!("{p:.2}"),
            format!("{le_ok}/{trials}"),
            format!("{ag_ok}/{trials}"),
            fmt_count(lost as f64 / trials as f64),
        ]);
    }
    print_table(
        &[
            "edge failure p",
            "LE success",
            "agree success",
            "LE msgs lost/trial",
        ],
        &rows,
    );

    println!();
    println!("shape check: candidate pairs share ~|R|^2/n non-faulty referees and");
    println!("each relay path survives with prob (1-p)^2, so the protocols absorb");
    println!("remarkably heavy edge loss and only crumble when (1-p)^2 |R|^2/n");
    println!("drops toward zero (p >~ 0.8 here). A full general-graph treatment");
    println!("is the paper's open question 2.");
}
