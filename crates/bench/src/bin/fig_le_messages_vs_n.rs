//! E2 — message complexity of leader election vs `n` (Theorem 4.1).
//!
//! Sweeps the network size at fixed `α` and fits the measured message
//! counts to a power law. Theorem 4.1 predicts `Õ(√n)` growth: the fitted
//! exponent on `n` should sit near 0.5 (polylog factors push it slightly
//! up at these sizes), decisively below the linear baseline's 1.0 and the
//! broadcast baseline's 2.0.
//!
//! Declares its grid as an [`ftc_lab`] campaign — `ftc lab run` can
//! execute, persist, and diff the same experiment.
//!
//! ```sh
//! cargo run --release -p ftc-bench --bin fig_le_messages_vs_n -- [--jobs N] [--trials N] [--seed N] [--smoke]
//! ```

use ftc_bench::{fmt_count, print_table, ExpOpts};
use ftc_core::params::Params;
use ftc_lab::{
    run_campaign, Adv, CampaignSpec, CellSpec, CheckAxis, CheckMetric, ExponentCheck, LabSubstrate,
    Workload,
};
use ftc_sim::stats::fit_power_law;

const ALPHA: f64 = 0.5;

fn main() {
    let opts = ExpOpts::parse();
    let sizes = opts.pick(vec![1024u32, 2048, 4096, 8192, 16384], vec![256, 512, 1024]);
    let trials = opts.trials(8);
    let seed = opts.seed(0xE2);
    println!(
        "E2: implicit leader election, messages vs n (alpha = {ALPHA}, {trials} trials, {})",
        opts.banner()
    );
    println!();

    let mut spec = CampaignSpec::new("fig-le-messages-vs-n");
    for &n in &sizes {
        spec = spec.cell(
            CellSpec::new(
                Workload::Le {
                    adv: Adv::Random(60),
                },
                n,
                ALPHA,
                seed,
                trials,
            )
            .label("le"),
        );
    }
    spec = spec.check(ExponentCheck {
        name: "le-msgs-sublinear".into(),
        series: "le".into(),
        metric: CheckMetric::Msgs,
        axis: CheckAxis::N,
        min: 0.3,
        max: 1.05,
    });
    let record = run_campaign(&spec, opts.jobs, LabSubstrate::Engine).expect("campaign");

    let mut rows = Vec::new();
    let mut xs = Vec::new();
    let mut ys = Vec::new();
    for (cell, &n) in record.cells.iter().zip(&sizes) {
        let params = Params::new(n, ALPHA).expect("valid");
        xs.push(f64::from(n));
        ys.push(cell.msgs.mean);
        rows.push(vec![
            n.to_string(),
            fmt_count(cell.msgs.mean),
            fmt_count(cell.msgs.p95),
            fmt_count(params.le_message_bound()),
            format!("{:.1}", cell.msgs.mean / params.le_message_bound()),
            fmt_count(f64::from(n) * f64::from(n)),
            format!("{:.2}", cell.success_rate()),
        ]);
    }
    print_table(
        &[
            "n",
            "msgs mean",
            "msgs p95",
            "bound sqrt(n)ln^2.5/a^2.5",
            "x bound",
            "n^2 (flood)",
            "success",
        ],
        &rows,
    );

    let (exp, coeff) = fit_power_law(&xs, &ys);
    println!();
    println!("fitted: messages = {coeff:.1} * n^{exp:.3}");
    println!("shape check: exponent should be ~0.5 (sublinear), far from 1.0 and 2.0.");
}
