//! E4 — round complexity `O(log n/α)` (Theorems 4.1/5.1).
//!
//! Two sweeps: rounds vs `n` at fixed `α` (should grow like `log n` —
//! doubling `n` adds a constant) and rounds vs `α` at fixed `n` (should
//! grow like `1/α`). The paper's almost-matching lower bound is
//! `Ω(log n/log log n)` of reference \[25\].
//!
//! Declares its grid as an [`ftc_lab`] campaign — `ftc lab run` can
//! execute, persist, and diff the same experiment.
//!
//! ```sh
//! cargo run --release -p ftc-bench --bin fig_rounds -- [--jobs N] [--trials N] [--seed N] [--smoke]
//! ```

use ftc_bench::{print_table, ExpOpts};
use ftc_lab::{run_campaign, Adv, CampaignSpec, CellSpec, LabSubstrate, Workload};

fn main() {
    let opts = ExpOpts::parse();
    let sizes = opts.pick(vec![1024u32, 2048, 4096, 8192, 16384], vec![256, 512, 1024]);
    // E4b sweeps alpha down to 0.125, which needs n >= 1024.
    let nb = opts.pick(4096u32, 1024);
    let trials = opts.trials(8);
    let seed_a = opts.seed(0xE4);
    let seed_b = opts.seed(0x4B);
    println!(
        "E4a: rounds vs n (alpha = 0.5, worst-case targeted adversary, {trials} trials, {})",
        opts.banner()
    );
    println!();

    const ALPHAS: [f64; 4] = [1.0, 0.5, 0.25, 0.125];
    let mut spec = CampaignSpec::new("fig-rounds");
    for &n in &sizes {
        spec = spec
            .cell(
                CellSpec::new(Workload::Le { adv: Adv::Targeted }, n, 0.5, seed_a, trials)
                    .label("le-a"),
            )
            .cell(
                CellSpec::new(
                    Workload::Agree {
                        zeros: 0.05,
                        adv: Adv::Targeted,
                    },
                    n,
                    0.5,
                    seed_a,
                    trials,
                )
                .label("agree-a"),
            );
    }
    for &alpha in &ALPHAS {
        spec = spec
            .cell(
                CellSpec::new(
                    Workload::Le {
                        adv: Adv::Random(60),
                    },
                    nb,
                    alpha,
                    seed_b,
                    trials,
                )
                .label("le-b"),
            )
            .cell(
                CellSpec::new(
                    Workload::Agree {
                        zeros: 0.05,
                        adv: Adv::Random(20),
                    },
                    nb,
                    alpha,
                    seed_b,
                    trials,
                )
                .label("agree-b"),
            );
    }
    let record = run_campaign(&spec, opts.jobs, LabSubstrate::Engine).expect("campaign");
    let series = |label: &str| {
        record
            .cells
            .iter()
            .filter(|c| c.cell.label == label)
            .collect::<Vec<_>>()
    };

    let mut rows = Vec::new();
    for ((le, ag), &n) in series("le-a").iter().zip(series("agree-a")).zip(&sizes) {
        rows.push(vec![
            n.to_string(),
            format!("{:.1}", f64::from(n).log2()),
            format!("{:.0}", le.rounds.mean),
            format!("{:.0}", le.rounds.max),
            format!("{:.0}", ag.rounds.mean),
            format!("{:.2}", le.success_rate().min(ag.success_rate())),
        ]);
    }
    print_table(
        &[
            "n",
            "log2 n",
            "LE rounds",
            "LE max",
            "agree rounds",
            "min success",
        ],
        &rows,
    );
    println!();
    println!("shape check: rounds stay in the tens while n grows 16x — nothing");
    println!("linear in n. (At these sizes the measured rounds are dominated by");
    println!("the rank-forwarding pre-processing, whose per-referee load shrinks");
    println!("like log^1.5(n)/sqrt(n); the asymptotic +O(1)-per-doubling log-term");
    println!("emerges only at much larger n. Agreement, which has no such");
    println!("pre-processing, sits at a handful of rounds throughout.)");
    println!();

    println!("E4b: rounds vs alpha (n = {nb})");
    println!();
    let mut rows = Vec::new();
    for ((le, ag), &alpha) in series("le-b").iter().zip(series("agree-b")).zip(&ALPHAS) {
        rows.push(vec![
            format!("{alpha}"),
            format!("{:.0}", le.rounds.mean),
            format!("{:.0}", ag.rounds.mean),
            format!("{:.2}", le.success_rate().min(ag.success_rate())),
        ]);
    }
    print_table(
        &["alpha", "LE rounds", "agree rounds", "min success"],
        &rows,
    );
    println!();
    println!("shape check: LE rounds roughly double per halving of alpha (the");
    println!("1/alpha factor, steepened by the alpha^-1.5 pre-processing term);");
    println!("agreement stays constant-ish because its zero-propagation quiesces");
    println!("long before its O(log n/alpha) budget.");
}
