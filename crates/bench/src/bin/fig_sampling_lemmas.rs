//! E10 — the concentration lemmas, measured (Lemmas 1–3).
//!
//! Monte-Carlo of the sampling layer alone:
//!
//! * Lemma 1 — with candidate probability `6·ln n/(α·n)`, the committee
//!   size lands in `[2·ln n/α, 12·ln n/α]` whp;
//! * Lemma 2 — the committee contains a non-faulty node whp;
//! * Lemma 3 — every pair of candidates shares a non-faulty referee whp.
//!
//! Plus the D2/D3 ablations: halving the constants must visibly erode the
//! guarantees.
//!
//! ```sh
//! cargo run --release -p ftc-bench --bin fig_sampling_lemmas -- [--jobs N] [--trials N] [--seed N] [--smoke]
//! ```

use ftc_bench::{print_table, ExpOpts};
use ftc_core::params::Params;
use ftc_core::sampling::draw_committee;
use ftc_sim::runner::{ParRunner, TrialPlan};
use rand::prelude::*;
use rand::rngs::SmallRng;
use std::collections::HashSet;

const ALPHA: f64 = 0.5;

struct LemmaStats {
    committee_in_band: u64,
    committee_nonfaulty: u64,
    pairs_connected: u64,
    mean_committee: f64,
}

fn run_lemmas(params: &Params, trials: u64, seed_base: u64, jobs: usize) -> LemmaStats {
    let n = params.n() as usize;
    let f = params.max_faults();
    let lo = 2.0 * params.ln_n() / params.alpha();
    let hi = 12.0 * params.ln_n() / params.alpha();
    let batch = ParRunner::new(TrialPlan::new(seed_base, trials).jobs(jobs)).run(|_, seed| {
        let mut rng = SmallRng::seed_from_u64(seed);
        let faulty: HashSet<usize> = rand::seq::index::sample(&mut rng, n, f)
            .into_iter()
            .collect();
        let (cands, refs) = draw_committee(&mut rng, params);
        let committee = cands.len() as f64;
        let in_band = committee >= lo && committee <= hi;
        let nonfaulty = cands.iter().any(|c| !faulty.contains(c));
        // Lemma 3: every pair shares a *non-faulty* referee.
        let ref_sets: Vec<HashSet<usize>> = refs
            .iter()
            .map(|r| r.iter().copied().filter(|x| !faulty.contains(x)).collect())
            .collect();
        let mut all_pairs = true;
        'outer: for i in 0..cands.len() {
            for j in i + 1..cands.len() {
                if ref_sets[i].is_disjoint(&ref_sets[j]) {
                    all_pairs = false;
                    break 'outer;
                }
            }
        }
        (committee, in_band, nonfaulty, all_pairs)
    });
    let mut stats = LemmaStats {
        committee_in_band: 0,
        committee_nonfaulty: 0,
        pairs_connected: 0,
        mean_committee: 0.0,
    };
    for (committee, in_band, nonfaulty, all_pairs) in batch.values() {
        stats.mean_committee += committee / trials as f64;
        stats.committee_in_band += u64::from(*in_band);
        stats.committee_nonfaulty += u64::from(*nonfaulty);
        stats.pairs_connected += u64::from(*all_pairs);
    }
    stats
}

fn main() {
    let opts = ExpOpts::parse();
    let n = opts.pick(4096u32, 512);
    let trials = opts.trials_override.unwrap_or(opts.pick(300, 50));
    println!(
        "E10: Lemmas 1-3 Monte-Carlo, n = {n}, alpha = {ALPHA}, {trials} trials ({})",
        opts.banner()
    );
    println!("(faulty set: (1-alpha)n uniformly random nodes per trial)");
    println!();

    let mut rows = Vec::new();
    for (label, cf, rf) in [
        ("paper (c=6, r=2)", 6.0, 2.0),
        ("D2: half candidates", 3.0, 2.0),
        ("D3: half referees", 6.0, 1.0),
        ("D3: quarter referees", 6.0, 0.5),
    ] {
        let params = Params::new(n, ALPHA)
            .expect("valid")
            .with_candidate_factor(cf)
            .with_referee_factor(rf);
        let s = run_lemmas(&params, trials, opts.seed(0xE10), opts.jobs);
        rows.push(vec![
            label.to_string(),
            format!("{:.1}", s.mean_committee),
            format!("{:.3}", s.committee_in_band as f64 / trials as f64),
            format!("{:.3}", s.committee_nonfaulty as f64 / trials as f64),
            format!("{:.3}", s.pairs_connected as f64 / trials as f64),
        ]);
    }
    print_table(
        &[
            "configuration",
            "mean |C|",
            "Lemma 1 (band)",
            "Lemma 2 (non-faulty)",
            "Lemma 3 (pairs)",
        ],
        &rows,
    );
    println!();
    println!("shape checks: the paper row scores ~1.000 on all three lemmas; the");
    println!("ablated rows degrade — most sharply Lemma 3 when the referee budget");
    println!("drops (pairwise connectivity is the sqrt(n log n / a) term).");
}
