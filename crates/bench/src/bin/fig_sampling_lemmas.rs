//! E10 — the concentration lemmas, measured (Lemmas 1–3).
//!
//! Monte-Carlo of the sampling layer alone:
//!
//! * Lemma 1 — with candidate probability `6·ln n/(α·n)`, the committee
//!   size lands in `[2·ln n/α, 12·ln n/α]` whp;
//! * Lemma 2 — the committee contains a non-faulty node whp;
//! * Lemma 3 — every pair of candidates shares a non-faulty referee whp.
//!
//! Plus the D2/D3 ablations: halving the constants must visibly erode the
//! guarantees.
//!
//! Declares its grid as an [`ftc_lab`] campaign — `ftc lab run` can
//! execute, persist, and diff the same experiment.
//!
//! ```sh
//! cargo run --release -p ftc-bench --bin fig_sampling_lemmas -- [--jobs N] [--trials N] [--seed N] [--smoke]
//! ```

use ftc_bench::{print_table, ExpOpts};
use ftc_lab::{run_campaign, CampaignSpec, CellSpec, LabSubstrate, Workload};

const ALPHA: f64 = 0.5;

fn main() {
    let opts = ExpOpts::parse();
    let n = opts.pick(4096u32, 512);
    let trials = opts.trials_override.unwrap_or(opts.pick(300, 50));
    println!(
        "E10: Lemmas 1-3 Monte-Carlo, n = {n}, alpha = {ALPHA}, {trials} trials ({})",
        opts.banner()
    );
    println!("(faulty set: (1-alpha)n uniformly random nodes per trial)");
    println!();

    let configs = [
        ("paper (c=6, r=2)", 6.0, 2.0),
        ("D2: half candidates", 3.0, 2.0),
        ("D3: half referees", 6.0, 1.0),
        ("D3: quarter referees", 6.0, 0.5),
    ];
    let mut spec = CampaignSpec::new("fig-sampling-lemmas");
    for &(label, cf, rf) in &configs {
        spec = spec.cell(
            CellSpec::new(
                Workload::SamplingLemmas {
                    candidate_factor: cf,
                    referee_factor: rf,
                },
                n,
                ALPHA,
                opts.seed(0xE10),
                trials,
            )
            .label(label),
        );
    }
    let record = run_campaign(&spec, opts.jobs, LabSubstrate::Engine).expect("campaign");

    let mut rows = Vec::new();
    for (cell, &(label, _, _)) in record.cells.iter().zip(&configs) {
        let rate = |name: &str| cell.extra(name).map_or(0.0, |s| s.mean);
        rows.push(vec![
            label.to_string(),
            format!("{:.1}", rate("committee")),
            format!("{:.3}", rate("in_band")),
            format!("{:.3}", rate("nonfaulty")),
            format!("{:.3}", rate("pairs")),
        ]);
    }
    print_table(
        &[
            "configuration",
            "mean |C|",
            "Lemma 1 (band)",
            "Lemma 2 (non-faulty)",
            "Lemma 3 (pairs)",
        ],
        &rows,
    );
    println!();
    println!("shape checks: the paper row scores ~1.000 on all three lemmas; the");
    println!("ablated rows degrade — most sharply Lemma 3 when the referee budget");
    println!("drops (pairwise connectivity is the sqrt(n log n / a) term).");
}
