//! E7 — cost of the explicit extensions (`O(n·log n/α)` messages).
//!
//! The implicit protocols are sublinear; going explicit necessarily costs
//! `Ω(n)` messages (every node must learn the output). The paper's
//! extension pays `O(n·log n/α)` in one extra broadcast exchange. The
//! sweep verifies: explicit cost grows linearly in `n` (fit exponent ≈ 1)
//! while the implicit part stays ≈ `√n`.
//!
//! ```sh
//! cargo run --release -p ftc-bench --bin fig_explicit -- [--jobs N] [--trials N] [--seed N] [--smoke]
//! ```

use ftc_bench::{fmt_count, print_table, ExpOpts};
use ftc_core::explicit::{
    ExplicitAgreeNode, ExplicitAgreeOutcome, ExplicitLeNode, ExplicitLeOutcome,
};
use ftc_core::leader_election::LeNode;
use ftc_core::params::Params;
use ftc_sim::prelude::*;
use ftc_sim::stats::fit_power_law;

const ALPHA: f64 = 0.5;

fn main() {
    let opts = ExpOpts::parse();
    let sizes = opts.pick(vec![1024u32, 2048, 4096, 8192], vec![256, 512, 1024]);
    let trials = opts.trials(6);
    println!(
        "E7: explicit extension cost (alpha = {ALPHA}, {trials} trials, random crashes, {})",
        opts.banner()
    );
    println!();

    let mut rows = Vec::new();
    let mut xs = Vec::new();
    let mut le_ys = Vec::new();
    let mut announce_ys = Vec::new();
    for &n in &sizes {
        let params = Params::new(n, ALPHA).expect("valid");
        let f = params.max_faults();

        let cfg = SimConfig::new(n)
            .seed(opts.seed(0xE7))
            .max_rounds(ExplicitLeNode::round_budget(&params));
        let le = run_trials_jobs(&cfg, trials, opts.jobs, |c| {
            let mut adv = RandomCrash::new(f, 40);
            let r = run(c, |_| ExplicitLeNode::new(params.clone()), &mut adv);
            let o = ExplicitLeOutcome::evaluate(&r);
            (o.success, r.metrics.msgs_sent)
        });
        let le_ok = le.iter().filter(|t| t.value.0).count();
        let le_msgs = le.iter().map(|t| t.value.1 as f64).sum::<f64>() / trials as f64;

        // The implicit phase alone, same seeds/adversary: the difference
        // is the cost of the announcement broadcast.
        let implicit = run_trials_jobs(&cfg, trials, opts.jobs, |c| {
            let mut adv = RandomCrash::new(f, 40);
            let r = run(c, |_| LeNode::new(params.clone()), &mut adv);
            r.metrics.msgs_sent
        });
        let implicit_msgs = implicit.iter().map(|t| t.value as f64).sum::<f64>() / trials as f64;
        let announce_msgs = (le_msgs - implicit_msgs).max(1.0);
        announce_ys.push(announce_msgs);

        let cfg = SimConfig::new(n)
            .seed(opts.seed(0x7E))
            .max_rounds(ExplicitAgreeNode::round_budget(&params));
        let ag = run_trials_jobs(&cfg, trials, opts.jobs, |c| {
            let mut adv = RandomCrash::new(f, 20);
            let r = run(
                c,
                |id| ExplicitAgreeNode::new(params.clone(), id.0 % 20 != 0),
                &mut adv,
            );
            let o = ExplicitAgreeOutcome::evaluate(&r);
            (o.success, r.metrics.msgs_sent)
        });
        let ag_ok = ag.iter().filter(|t| t.value.0).count();
        let ag_msgs = ag.iter().map(|t| t.value.1 as f64).sum::<f64>() / trials as f64;

        xs.push(f64::from(n));
        le_ys.push(le_msgs);
        let bound = f64::from(n) * params.ln_n() / ALPHA;
        rows.push(vec![
            n.to_string(),
            fmt_count(le_msgs),
            fmt_count(announce_ys.last().copied().unwrap_or(0.0)),
            format!("{le_ok}/{trials}"),
            fmt_count(ag_msgs),
            format!("{ag_ok}/{trials}"),
            fmt_count(bound),
        ]);
    }
    print_table(
        &[
            "n",
            "explicit LE total",
            "announce only",
            "ok",
            "explicit agree msgs",
            "ok",
            "n ln n/a",
        ],
        &rows,
    );

    let (total_exp, _) = fit_power_law(&xs, &le_ys);
    let (ann_exp, _) = fit_power_law(&xs, &announce_ys);
    println!();
    println!("fitted: total ~ n^{total_exp:.2}; announce phase alone ~ n^{ann_exp:.2} (paper: ~1,");
    println!("the Omega(n) broadcast floor). The total sits between the implicit");
    println!("~sqrt(n) term (which still dominates at these n) and the linear floor.");
}
