//! E7 — cost of the explicit extensions (`O(n·log n/α)` messages).
//!
//! The implicit protocols are sublinear; going explicit necessarily costs
//! `Ω(n)` messages (every node must learn the output). The paper's
//! extension pays `O(n·log n/α)` in one extra broadcast exchange. The
//! sweep verifies: explicit cost grows linearly in `n` (fit exponent ≈ 1)
//! while the implicit part stays ≈ `√n`.
//!
//! Declares its grid as an [`ftc_lab`] campaign — `ftc lab run` can
//! execute, persist, and diff the same experiment.
//!
//! ```sh
//! cargo run --release -p ftc-bench --bin fig_explicit -- [--jobs N] [--trials N] [--seed N] [--smoke]
//! ```

use ftc_bench::{fmt_count, print_table, ExpOpts};
use ftc_core::params::Params;
use ftc_lab::{run_campaign, CampaignSpec, CellSpec, LabSubstrate, Workload};
use ftc_sim::stats::fit_power_law;

const ALPHA: f64 = 0.5;

fn main() {
    let opts = ExpOpts::parse();
    let sizes = opts.pick(vec![1024u32, 2048, 4096, 8192], vec![256, 512, 1024]);
    let trials = opts.trials(6);
    println!(
        "E7: explicit extension cost (alpha = {ALPHA}, {trials} trials, random crashes, {})",
        opts.banner()
    );
    println!();

    let mut spec = CampaignSpec::new("fig-explicit");
    for &n in &sizes {
        spec = spec
            .cell(
                CellSpec::new(Workload::LeExplicit, n, ALPHA, opts.seed(0xE7), trials)
                    .label("le-explicit"),
            )
            .cell(
                CellSpec::new(
                    Workload::LeImplicitExplicitBudget,
                    n,
                    ALPHA,
                    opts.seed(0xE7),
                    trials,
                )
                .label("le-implicit"),
            )
            .cell(
                CellSpec::new(
                    Workload::AgreeExplicit { zeros: 0.05 },
                    n,
                    ALPHA,
                    opts.seed(0x7E),
                    trials,
                )
                .label("agree-explicit"),
            );
    }
    let record = run_campaign(&spec, opts.jobs, LabSubstrate::Engine).expect("campaign");
    let series = |label: &str| {
        record
            .cells
            .iter()
            .filter(|c| c.cell.label == label)
            .collect::<Vec<_>>()
    };

    let mut rows = Vec::new();
    let mut xs = Vec::new();
    let mut le_ys = Vec::new();
    let mut announce_ys = Vec::new();
    for (((le, implicit), ag), &n) in series("le-explicit")
        .iter()
        .zip(series("le-implicit"))
        .zip(series("agree-explicit"))
        .zip(&sizes)
    {
        let params = Params::new(n, ALPHA).expect("valid");
        let le_msgs = le.msgs.mean;
        // The implicit phase alone, same seeds/adversary: the difference
        // is the cost of the announcement broadcast.
        let announce_msgs = (le_msgs - implicit.msgs.mean).max(1.0);
        announce_ys.push(announce_msgs);
        xs.push(f64::from(n));
        le_ys.push(le_msgs);
        let bound = f64::from(n) * params.ln_n() / ALPHA;
        rows.push(vec![
            n.to_string(),
            fmt_count(le_msgs),
            fmt_count(announce_msgs),
            format!("{}/{trials}", le.successes),
            fmt_count(ag.msgs.mean),
            format!("{}/{trials}", ag.successes),
            fmt_count(bound),
        ]);
    }
    print_table(
        &[
            "n",
            "explicit LE total",
            "announce only",
            "ok",
            "explicit agree msgs",
            "ok",
            "n ln n/a",
        ],
        &rows,
    );

    let (total_exp, _) = fit_power_law(&xs, &le_ys);
    let (ann_exp, _) = fit_power_law(&xs, &announce_ys);
    println!();
    println!("fitted: total ~ n^{total_exp:.2}; announce phase alone ~ n^{ann_exp:.2} (paper: ~1,");
    println!("the Omega(n) broadcast floor). The total sits between the implicit");
    println!("~sqrt(n) term (which still dominates at these n) and the linear floor.");
}
