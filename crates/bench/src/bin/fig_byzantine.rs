//! E12 (extension) — the Byzantine gap (the paper's open question 3).
//!
//! "Whether a sub-linear message bound agreement protocol is possible in
//! the presence of Byzantine node failure" is left open by the paper. This
//! experiment shows how far the crash-fault protocols are from closing it:
//! a *single* Byzantine node defeats both —
//!
//! * a forged `0` makes the all-ones network decide a value nobody input
//!   (validity violation);
//! * an equivocating pair of forged leadership claims makes candidates
//!   elect a phantom (and possibly two different phantoms).
//!
//! Declares its grid as an [`ftc_lab`] campaign — `ftc lab run` can
//! execute, persist, and diff the same experiment.
//!
//! ```sh
//! cargo run --release -p ftc-bench --bin fig_byzantine -- [--jobs N] [--trials N] [--seed N] [--smoke]
//! ```

use ftc_bench::{print_table, ExpOpts};
use ftc_lab::{run_campaign, CampaignSpec, CellSpec, LabSubstrate, Workload};

const BS: [u32; 4] = [0, 1, 2, 4];

fn main() {
    let opts = ExpOpts::parse();
    let n = opts.pick(1024u32, 256);
    let trials = opts.trials(20);
    println!(
        "E12: Byzantine corruption vs the crash-fault protocols, n = {n}, {trials} trials ({})",
        opts.banner()
    );
    println!();

    let mut spec = CampaignSpec::new("fig-byzantine");
    for &b in &BS {
        spec = spec.cell(
            CellSpec::new(
                Workload::AgreeByzantine { b },
                n,
                0.9,
                opts.seed(0xB12),
                trials,
            )
            .label("agree"),
        );
    }
    for &b in &BS {
        spec = spec.cell(
            CellSpec::new(
                Workload::LeByzantine { b },
                n,
                0.9,
                opts.seed(0x12B),
                trials,
            )
            .label("le"),
        );
    }
    let record = run_campaign(&spec, opts.jobs, LabSubstrate::Engine).expect("campaign");
    let series = |label: &str| {
        record
            .cells
            .iter()
            .filter(|c| c.cell.label == label)
            .collect::<Vec<_>>()
    };

    println!("— agreement, all honest inputs = 1, b forged-zero senders —");
    let mut rows = Vec::new();
    for (cell, &b) in series("agree").iter().zip(&BS) {
        // The cell's success predicate is "validity held", so the
        // violation count is the complement.
        let validity_violations = trials - cell.successes;
        rows.push(vec![
            b.to_string(),
            format!("{validity_violations}/{trials}"),
        ]);
    }
    print_table(&["byzantine nodes", "validity violations"], &rows);
    println!();

    println!("— leader election, b equivocating claimants —");
    let mut rows = Vec::new();
    for (cell, &b) in series("le").iter().zip(&BS) {
        let broken = trials - cell.successes;
        rows.push(vec![b.to_string(), format!("{broken}/{trials}")]);
    }
    print_table(&["byzantine nodes", "elections destroyed"], &rows);

    println!();
    println!("shape check: b = 0 rows are clean; a single Byzantine node breaks");
    println!("both protocols almost surely. Sublinear *Byzantine* agreement in this");
    println!("model remains open (paper, Section VI, question 3) — known Byzantine");
    println!("protocols (King-Saia etc.) pay Omega-tilde(n^1.5) messages.");
}
