//! E12 (extension) — the Byzantine gap (the paper's open question 3).
//!
//! "Whether a sub-linear message bound agreement protocol is possible in
//! the presence of Byzantine node failure" is left open by the paper. This
//! experiment shows how far the crash-fault protocols are from closing it:
//! a *single* Byzantine node defeats both —
//!
//! * a forged `0` makes the all-ones network decide a value nobody input
//!   (validity violation);
//! * an equivocating pair of forged leadership claims makes candidates
//!   elect a phantom (and possibly two different phantoms).
//!
//! ```sh
//! cargo run --release -p ftc-bench --bin fig_byzantine -- [--jobs N] [--trials N] [--seed N] [--smoke]
//! ```

use ftc_bench::{print_table, ExpOpts};
use ftc_core::agreement::{AgreeNode, AgreeStatus};
use ftc_core::byzantine::{EquivocatingClaimant, ZeroForger};
use ftc_core::leader_election::{LeNode, LeOutcome};
use ftc_core::params::Params;
use ftc_sim::prelude::*;

fn main() {
    let opts = ExpOpts::parse();
    let n = opts.pick(1024u32, 256);
    let trials = opts.trials(20);
    let params = Params::new(n, 0.9).expect("valid");
    println!(
        "E12: Byzantine corruption vs the crash-fault protocols, n = {n}, {trials} trials ({})",
        opts.banner()
    );
    println!();

    println!("— agreement, all honest inputs = 1, b forged-zero senders —");
    let mut rows = Vec::new();
    for &b in &[0usize, 1, 2, 4] {
        let batch = ParRunner::new(TrialPlan::new(opts.seed(0xB12), trials).jobs(opts.jobs)).run(
            |_, seed| {
                let cfg = SimConfig::new(n)
                    .seed(seed)
                    .max_rounds(params.agreement_round_budget());
                let mut adv = ZeroForger::new(b);
                let r = run(&cfg, |_| AgreeNode::new(params.clone(), true), &mut adv);
                let honest_zero = r
                    .surviving_states()
                    .filter(|(id, _)| !r.faulty.contains(*id))
                    .any(|(_, s)| s.status() == AgreeStatus::Decided(false));
                honest_zero
            },
        );
        let validity_violations = batch.values().filter(|v| **v).count();
        rows.push(vec![
            b.to_string(),
            format!("{validity_violations}/{trials}"),
        ]);
    }
    print_table(&["byzantine nodes", "validity violations"], &rows);
    println!();

    println!("— leader election, b equivocating claimants —");
    let mut rows = Vec::new();
    for &b in &[0usize, 1, 2, 4] {
        let batch = ParRunner::new(TrialPlan::new(opts.seed(0x12B), trials).jobs(opts.jobs)).run(
            |_, seed| {
                let cfg = SimConfig::new(n)
                    .seed(seed)
                    .max_rounds(params.le_round_budget());
                let mut adv = EquivocatingClaimant::new(b);
                let r = run(&cfg, |_| LeNode::new(params.clone()), &mut adv);
                !LeOutcome::evaluate(&r).success
            },
        );
        let broken = batch.values().filter(|v| **v).count();
        rows.push(vec![b.to_string(), format!("{broken}/{trials}")]);
    }
    print_table(&["byzantine nodes", "elections destroyed"], &rows);

    println!();
    println!("shape check: b = 0 rows are clean; a single Byzantine node breaks");
    println!("both protocols almost surely. Sublinear *Byzantine* agreement in this");
    println!("model remains open (paper, Section VI, question 3) — known Byzantine");
    println!("protocols (King-Saia etc.) pay Omega-tilde(n^1.5) messages.");
}
