//! E12 (extension) — the Byzantine gap (the paper's open question 3).
//!
//! "Whether a sub-linear message bound agreement protocol is possible in
//! the presence of Byzantine node failure" is left open by the paper. This
//! experiment shows how far the crash-fault protocols are from closing it:
//! a *single* Byzantine node defeats both —
//!
//! * a forged `0` makes the all-ones network decide a value nobody input
//!   (validity violation);
//! * an equivocating pair of forged leadership claims makes candidates
//!   elect a phantom (and possibly two different phantoms).
//!
//! ```sh
//! cargo run --release -p ftc-bench --bin fig_byzantine
//! ```

use ftc_bench::print_table;
use ftc_core::agreement::{AgreeNode, AgreeStatus};
use ftc_core::byzantine::{EquivocatingClaimant, ZeroForger};
use ftc_core::leader_election::{LeNode, LeOutcome};
use ftc_core::params::Params;
use ftc_sim::prelude::*;

const N: u32 = 1024;
const TRIALS: u64 = 20;

fn main() {
    let params = Params::new(N, 0.9).expect("valid");
    println!("E12: Byzantine corruption vs the crash-fault protocols, n = {N}, {TRIALS} trials");
    println!();

    println!("— agreement, all honest inputs = 1, b forged-zero senders —");
    let mut rows = Vec::new();
    for &b in &[0usize, 1, 2, 4] {
        let mut validity_violations = 0;
        for t in 0..TRIALS {
            let cfg = SimConfig::new(N)
                .seed(0xB12 + t)
                .max_rounds(params.agreement_round_budget());
            let mut adv = ZeroForger::new(b);
            let r = run(&cfg, |_| AgreeNode::new(params.clone(), true), &mut adv);
            let honest_zero = r
                .surviving_states()
                .filter(|(id, _)| !r.faulty.contains(*id))
                .any(|(_, s)| s.status() == AgreeStatus::Decided(false));
            if honest_zero {
                validity_violations += 1;
            }
        }
        rows.push(vec![
            b.to_string(),
            format!("{validity_violations}/{TRIALS}"),
        ]);
    }
    print_table(&["byzantine nodes", "validity violations"], &rows);
    println!();

    println!("— leader election, b equivocating claimants —");
    let mut rows = Vec::new();
    for &b in &[0usize, 1, 2, 4] {
        let mut broken = 0;
        for t in 0..TRIALS {
            let cfg = SimConfig::new(N)
                .seed(0x12B + t)
                .max_rounds(params.le_round_budget());
            let mut adv = EquivocatingClaimant::new(b);
            let r = run(&cfg, |_| LeNode::new(params.clone()), &mut adv);
            if !LeOutcome::evaluate(&r).success {
                broken += 1;
            }
        }
        rows.push(vec![b.to_string(), format!("{broken}/{TRIALS}")]);
    }
    print_table(&["byzantine nodes", "elections destroyed"], &rows);

    println!();
    println!("shape check: b = 0 rows are clean; a single Byzantine node breaks");
    println!("both protocols almost surely. Sublinear *Byzantine* agreement in this");
    println!("model remains open (paper, Section VI, question 3) — known Byzantine");
    println!("protocols (King-Saia etc.) pay Omega-tilde(n^1.5) messages.");
}
