//! E5/E6 — success probability and leader quality under every adversary.
//!
//! Theorem 4.1: leader election succeeds whp and the elected leader is
//! non-faulty with probability ≥ α. Theorem 5.1: agreement (consistency +
//! validity + non-emptiness) holds whp. Definition checks run under all
//! four crash schedules, plus the iteration-budget ablation (DESIGN.md
//! D4): starving the protocol of iterations must surface failures under
//! the targeted adversary.
//!
//! Declares its grid as an [`ftc_lab`] campaign — `ftc lab run` can
//! execute, persist, and diff the same experiment.
//!
//! ```sh
//! cargo run --release -p ftc-bench --bin fig_success -- [--jobs N] [--trials N] [--seed N] [--smoke]
//! ```

use ftc_bench::{print_table, ExpOpts};
use ftc_core::params::Params;
use ftc_lab::{run_campaign, Adv, CampaignSpec, CellSpec, LabSubstrate, Workload};
use ftc_sim::stats::wilson_interval;

const ALPHA: f64 = 0.5;

fn main() {
    let opts = ExpOpts::parse();
    let n = opts.pick(2048u32, 256);
    let trials = opts.trials(60);
    println!(
        "E5: leader election success and leader quality (n = {n}, alpha = {ALPHA}, {trials} trials, {})",
        opts.banner()
    );
    println!();
    let kinds = [
        ("fault-free", Adv::None),
        ("eager", Adv::Eager),
        ("random", Adv::Random(60)),
        ("targeted", Adv::Targeted),
    ];
    let input_densities: [(&str, f64); 5] = [
        ("all ones", 0.0),
        ("one zero in n", 1.0 / f64::from(n)),
        ("5% zeros", 0.05),
        ("half zeros", 0.5),
        ("all zeros", 1.0),
    ];
    let d4_trials = opts.trials(20);
    const D4_FACTORS: [f64; 4] = [14.0, 1.0, 0.1, 0.02];

    let mut spec = CampaignSpec::new("fig-success");
    for &(label, adv) in &kinds {
        spec = spec.cell(
            CellSpec::new(Workload::Le { adv }, n, ALPHA, opts.seed(0xE5), trials).label(label),
        );
    }
    for &(label, zero_frac) in &input_densities {
        spec = spec.cell(
            CellSpec::new(
                Workload::Agree {
                    zeros: zero_frac,
                    adv: Adv::Targeted,
                },
                n,
                ALPHA,
                opts.seed(0xE6),
                trials,
            )
            .label(label),
        );
    }
    for &factor in &D4_FACTORS {
        spec = spec.cell(
            CellSpec::new(
                Workload::LeIter {
                    factor,
                    per_round: 4,
                },
                n,
                0.25,
                opts.seed(0xD4),
                d4_trials,
            )
            .label("d4"),
        );
    }
    let record = run_campaign(&spec, opts.jobs, LabSubstrate::Engine).expect("campaign");
    let mut cells = record.cells.iter();

    let mut rows = Vec::new();
    for &(label, _) in &kinds {
        let m = cells.next().expect("cell");
        let (lo, hi) = wilson_interval(m.successes, trials);
        rows.push(vec![
            label.to_string(),
            format!("{}/{}", m.successes, trials),
            format!("[{lo:.2},{hi:.2}]"),
            format!("{:.2}", m.faulty_leader_rate()),
        ]);
    }
    print_table(
        &["adversary", "success", "95% CI", "faulty-leader rate"],
        &rows,
    );
    println!();
    println!("shape checks: success ~1.0 under every schedule; faulty-leader rate");
    println!(
        "at most (1-alpha) = {:.2} (paper: leader non-faulty w.p. >= alpha).",
        1.0 - ALPHA
    );
    println!();

    println!("E6: agreement success across input densities ({trials} trials each)");
    println!();
    let mut rows = Vec::new();
    for &(label, _) in &input_densities {
        let m = cells.next().expect("cell");
        rows.push(vec![
            label.to_string(),
            format!("{:.2}", m.success_rate()),
            format!("{:.0}", m.msgs.mean),
            format!("{:.0}", m.rounds.mean),
        ]);
    }
    print_table(&["inputs", "success", "msgs", "rounds"], &rows);
    println!();
    println!("shape checks: success ~1.0 everywhere; the all-ones row sends only");
    println!("registration traffic (the protocol is silent when no candidate holds 0).");
    println!();

    // D4 ablation: too few iterations break the worst case. The assassin
    // is set to multiple kills per round and alpha is lowered so kill
    // chains are long; the iteration budget must cover them.
    println!("D4 ablation: iteration budget vs success (alpha = 0.25, assassin x4)");
    println!();
    let mut rows = Vec::new();
    for &factor in &D4_FACTORS {
        let m = cells.next().expect("cell");
        let params = Params::new(n, 0.25)
            .expect("valid")
            .with_iteration_factor(factor);
        rows.push(vec![
            format!("{factor}"),
            params.iterations().to_string(),
            format!("{}/{}", m.successes, d4_trials),
        ]);
    }
    print_table(&["iteration factor", "iterations", "success"], &rows);
    println!();
    println!("shape check: the paper-budget rows succeed; a budget of only a");
    println!("couple of iterations cannot absorb the assassin's kill chain and");
    println!("elections start failing.");
}
