//! E5/E6 — success probability and leader quality under every adversary.
//!
//! Theorem 4.1: leader election succeeds whp and the elected leader is
//! non-faulty with probability ≥ α. Theorem 5.1: agreement (consistency +
//! validity + non-emptiness) holds whp. Definition checks run under all
//! four crash schedules, plus the iteration-budget ablation (DESIGN.md
//! D4): starving the protocol of iterations must surface failures under
//! the targeted adversary.
//!
//! ```sh
//! cargo run --release -p ftc-bench --bin fig_success -- [--jobs N] [--trials N] [--seed N] [--smoke]
//! ```

use ftc_bench::{measure_agreement, measure_le, print_table, AdversaryKind, ExpOpts};
use ftc_core::leader_election::{LeNode, LeOutcome};
use ftc_core::params::Params;
use ftc_sim::prelude::*;
use ftc_sim::stats::wilson_interval;

const ALPHA: f64 = 0.5;

fn main() {
    let opts = ExpOpts::parse();
    let n = opts.pick(2048u32, 256);
    let trials = opts.trials(60);
    println!(
        "E5: leader election success and leader quality (n = {n}, alpha = {ALPHA}, {trials} trials, {})",
        opts.banner()
    );
    println!();
    let kinds = [
        AdversaryKind::None,
        AdversaryKind::Eager,
        AdversaryKind::Random(60),
        AdversaryKind::Targeted,
    ];
    let mut rows = Vec::new();
    for kind in kinds {
        let m = measure_le(n, ALPHA, kind, trials, opts.seed(0xE5), opts.jobs);
        let succ = (m.success_rate * trials as f64).round() as u64;
        let (lo, hi) = wilson_interval(succ, trials);
        rows.push(vec![
            kind.label().to_string(),
            format!("{}/{}", succ, trials),
            format!("[{lo:.2},{hi:.2}]"),
            format!("{:.2}", m.faulty_leader_rate),
        ]);
    }
    print_table(
        &["adversary", "success", "95% CI", "faulty-leader rate"],
        &rows,
    );
    println!();
    println!("shape checks: success ~1.0 under every schedule; faulty-leader rate");
    println!(
        "at most (1-alpha) = {:.2} (paper: leader non-faulty w.p. >= alpha).",
        1.0 - ALPHA
    );
    println!();

    println!("E6: agreement success across input densities ({trials} trials each)");
    println!();
    let mut rows = Vec::new();
    for &(label, zero_frac) in &[
        ("all ones", 0.0),
        ("one zero in n", 1.0 / f64::from(n)),
        ("5% zeros", 0.05),
        ("half zeros", 0.5),
        ("all zeros", 1.0),
    ] {
        let m = measure_agreement(
            n,
            ALPHA,
            zero_frac,
            AdversaryKind::Targeted,
            trials,
            opts.seed(0xE6),
            opts.jobs,
        );
        rows.push(vec![
            label.to_string(),
            format!("{:.2}", m.success_rate),
            format!("{:.0}", m.msgs.mean),
            format!("{:.0}", m.rounds.mean),
        ]);
    }
    print_table(&["inputs", "success", "msgs", "rounds"], &rows);
    println!();
    println!("shape checks: success ~1.0 everywhere; the all-ones row sends only");
    println!("registration traffic (the protocol is silent when no candidate holds 0).");
    println!();

    // D4 ablation: too few iterations break the worst case. The assassin
    // is set to multiple kills per round and alpha is lowered so kill
    // chains are long; the iteration budget must cover them.
    println!("D4 ablation: iteration budget vs success (alpha = 0.25, assassin x4)");
    println!();
    let mut rows = Vec::new();
    let d4_trials = opts.trials(20);
    for &factor in &[14.0, 1.0, 0.1, 0.02] {
        let params = Params::new(n, 0.25)
            .expect("valid")
            .with_iteration_factor(factor);
        let f = params.max_faults();
        let batch = ParRunner::new(TrialPlan::new(opts.seed(0xD4), d4_trials).jobs(opts.jobs)).run(
            |_, seed| {
                let cfg = SimConfig::new(n)
                    .seed(seed)
                    .max_rounds(params.le_round_budget());
                let mut adv = ftc_core::adversaries::MinRankCrasher { f, per_round: 4 };
                let r = run(&cfg, |_| LeNode::new(params.clone()), &mut adv);
                LeOutcome::evaluate(&r).success
            },
        );
        let ok = batch.values().filter(|ok| **ok).count();
        rows.push(vec![
            format!("{factor}"),
            params.iterations().to_string(),
            format!("{}/{}", ok, d4_trials),
        ]);
    }
    print_table(&["iteration factor", "iterations", "success"], &rows);
    println!();
    println!("shape check: the paper-budget rows succeed; a budget of only a");
    println!("couple of iterations cannot absorb the assassin's kill chain and");
    println!("elections start failing.");
}
