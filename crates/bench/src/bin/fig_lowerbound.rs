//! E8 — the `Ω(√n/α^{3/2})` lower bound, observed (Theorems 4.2/5.2).
//!
//! Models "an algorithm that sends at most `B` messages" by running the
//! paper's protocols under a per-node send cap and watches the failure
//! probability rise to a constant as the realised spend falls towards and
//! below the threshold `√n/α^{3/2}` — the transition the proof predicts.
//! (See the `lower_bound_probe` example for the influence-cloud structure
//! behind the failures.)
//!
//! Declares its grid as an [`ftc_lab`] campaign — `ftc lab run` can
//! execute, persist, and diff the same experiment. Each cap keeps the
//! historical per-cap seed salt, so the numbers match the pre-campaign
//! sweep helpers bit-for-bit.
//!
//! ```sh
//! cargo run --release -p ftc-bench --bin fig_lowerbound -- [--jobs N] [--trials N] [--seed N] [--smoke]
//! ```

use ftc_bench::{fmt_count, print_table, ExpOpts};
use ftc_core::params::Params;
use ftc_lab::{run_campaign, CampaignSpec, CellSpec, LabSubstrate, Workload};
use ftc_sim::stats::Summary;

const ALPHA: f64 = 0.5;
const CAPS: [Option<u32>; 10] = [
    None,
    Some(64),
    Some(48),
    Some(32),
    Some(24),
    Some(16),
    Some(8),
    Some(4),
    Some(1),
    Some(0),
];

fn cap_salt(cap: Option<u32>) -> u64 {
    cap.map_or(u64::MAX, u64::from)
}

fn rows_of(points: &[(Option<u32>, &Summary, f64, f64, f64)]) -> Vec<Vec<String>> {
    points
        .iter()
        .map(|(cap, msgs, suppressed, threshold_ratio, failure_rate)| {
            vec![
                cap.map_or("unlimited".into(), |c| c.to_string()),
                fmt_count(msgs.mean),
                fmt_count(*suppressed),
                format!("{threshold_ratio:.2}"),
                format!("{failure_rate:.2}"),
            ]
        })
        .collect()
}

fn main() {
    let opts = ExpOpts::parse();
    let n = opts.pick(2048u32, 512);
    let trials = opts.trials(24);
    let threshold = Params::new(n, ALPHA)
        .expect("valid")
        .lower_bound_threshold();
    println!(
        "E8: per-node send-cap sweep, n = {n}, alpha = {ALPHA}, threshold sqrt(n)/a^1.5 = {threshold:.0} msgs, {trials} trials ({})",
        opts.banner()
    );
    println!("(inputs split 50/50 for agreement; (1-alpha)n eager crashes)");
    println!();

    let mut spec = CampaignSpec::new("fig-lowerbound");
    for &cap in &CAPS {
        spec = spec.cell(
            CellSpec::new(
                Workload::AgreeCapped { cap },
                n,
                ALPHA,
                opts.seed(0xE8) ^ cap_salt(cap),
                trials,
            )
            .label("agree"),
        );
    }
    for &cap in &CAPS {
        spec = spec.cell(
            CellSpec::new(
                Workload::LeCapped { cap },
                n,
                ALPHA,
                opts.seed(0x8E) ^ cap_salt(cap),
                trials,
            )
            .label("le"),
        );
    }
    let record = run_campaign(&spec, opts.jobs, LabSubstrate::Engine).expect("campaign");
    let points = |label: &str| {
        record
            .cells
            .iter()
            .filter(|c| c.cell.label == label)
            .zip(&CAPS)
            .map(|(c, &cap)| {
                (
                    cap,
                    &c.msgs,
                    c.extra("suppressed").map_or(0.0, |s| s.mean),
                    c.msgs.mean / threshold,
                    1.0 - c.success_rate(),
                )
            })
            .collect::<Vec<_>>()
    };

    println!("— agreement (Theorem 5.2) —");
    print_table(
        &[
            "cap/node",
            "mean msgs",
            "suppressed",
            "x threshold",
            "failure rate",
        ],
        &rows_of(&points("agree")),
    );
    println!();

    println!("— leader election (Theorem 4.2) —");
    print_table(
        &[
            "cap/node",
            "mean msgs",
            "suppressed",
            "x threshold",
            "failure rate",
        ],
        &rows_of(&points("le")),
    );

    println!();
    println!("shape checks: spend is monotone in the cap; failure rate ~0 while the");
    println!("spend sits far above the threshold, and climbs to a constant as the");
    println!("spend approaches/falls below it. (The paper's upper bound exceeds the");
    println!("lower bound by polylog factors, so the knee sits somewhat above 1x.)");
}
