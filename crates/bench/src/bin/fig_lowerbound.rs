//! E8 — the `Ω(√n/α^{3/2})` lower bound, observed (Theorems 4.2/5.2).
//!
//! Models "an algorithm that sends at most `B` messages" by running the
//! paper's protocols under a per-node send cap and watches the failure
//! probability rise to a constant as the realised spend falls towards and
//! below the threshold `√n/α^{3/2}` — the transition the proof predicts.
//! (See the `lower_bound_probe` example for the influence-cloud structure
//! behind the failures.)
//!
//! ```sh
//! cargo run --release -p ftc-bench --bin fig_lowerbound -- [--jobs N] [--trials N] [--seed N] [--smoke]
//! ```

use ftc_bench::{fmt_count, print_table, ExpOpts};
use ftc_core::params::Params;
use ftc_lowerbound::capped::{sweep_agreement, sweep_leader_election, SweepPoint};

const ALPHA: f64 = 0.5;
const CAPS: [Option<u32>; 10] = [
    None,
    Some(64),
    Some(48),
    Some(32),
    Some(24),
    Some(16),
    Some(8),
    Some(4),
    Some(1),
    Some(0),
];

fn rows_of(points: &[SweepPoint]) -> Vec<Vec<String>> {
    points
        .iter()
        .map(|p| {
            vec![
                p.cap.map_or("unlimited".into(), |c| c.to_string()),
                fmt_count(p.mean_messages),
                fmt_count(p.mean_suppressed),
                format!("{:.2}", p.threshold_ratio),
                format!("{:.2}", p.failure_rate),
            ]
        })
        .collect()
}

fn main() {
    let opts = ExpOpts::parse();
    let n = opts.pick(2048u32, 512);
    let trials = opts.trials(24);
    let threshold = Params::new(n, ALPHA)
        .expect("valid")
        .lower_bound_threshold();
    println!(
        "E8: per-node send-cap sweep, n = {n}, alpha = {ALPHA}, threshold sqrt(n)/a^1.5 = {threshold:.0} msgs, {trials} trials ({})",
        opts.banner()
    );
    println!("(inputs split 50/50 for agreement; (1-alpha)n eager crashes)");
    println!();

    println!("— agreement (Theorem 5.2) —");
    let pts = sweep_agreement(n, ALPHA, &CAPS, trials, opts.seed(0xE8), opts.jobs);
    print_table(
        &[
            "cap/node",
            "mean msgs",
            "suppressed",
            "x threshold",
            "failure rate",
        ],
        &rows_of(&pts),
    );
    println!();

    println!("— leader election (Theorem 4.2) —");
    let pts = sweep_leader_election(n, ALPHA, &CAPS, trials, opts.seed(0x8E), opts.jobs);
    print_table(
        &[
            "cap/node",
            "mean msgs",
            "suppressed",
            "x threshold",
            "failure rate",
        ],
        &rows_of(&pts),
    );

    println!();
    println!("shape checks: spend is monotone in the cap; failure rate ~0 while the");
    println!("spend sits far above the threshold, and climbs to a constant as the");
    println!("spend approaches/falls below it. (The paper's upper bound exceeds the");
    println!("lower bound by polylog factors, so the knee sits somewhat above 1x.)");
}
