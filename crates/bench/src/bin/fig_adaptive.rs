//! E11 (extension) — why the *static* adversary assumption matters.
//!
//! The paper's guarantees hold against a static adversary (faulty set
//! fixed before the run, crash timing adaptive). This experiment runs the
//! same leader election against (a) the strongest static schedules and
//! (b) a genuinely *adaptive* adversary that picks its victims after
//! seeing who became a candidate — with the same crash budget. The
//! adaptive adversary wins almost surely because the committee is only
//! `Θ(log n/α)` nodes: an instance of the qualitative gap between the
//! static-adversary bounds of this paper and the adaptive-adversary line
//! of work (Bar-Joseph & Ben-Or '98; Hajiaghayi et al. STOC'22).
//!
//! ```sh
//! cargo run --release -p ftc-bench --bin fig_adaptive
//! ```

use ftc_bench::print_table;
use ftc_core::adversaries::{AdaptiveCandidateKiller, MinRankCrasher};
use ftc_core::leader_election::{LeNode, LeOutcome};
use ftc_core::params::Params;
use ftc_sim::prelude::*;

const N: u32 = 1024;
const ALPHA: f64 = 0.5;
const TRIALS: u64 = 20;

fn main() {
    let params = Params::new(N, ALPHA).expect("valid");
    let budget = params.max_faults();
    println!(
        "E11: static vs adaptive adversary, n = {N}, crash budget {budget}, {TRIALS} trials"
    );
    println!();

    let mut rows = Vec::new();

    let mut measure = |label: &str, mk: &mut dyn FnMut() -> Box<dyn Adversary<ftc_core::messages::LeMsg>>| {
        let mut ok = 0;
        let mut crashes = 0u64;
        for t in 0..TRIALS {
            let cfg = SimConfig::new(N)
                .seed(0xE11 + t)
                .max_rounds(params.le_round_budget());
            let mut adv = mk();
            let r = run(&cfg, |_| LeNode::new(params.clone()), adv.as_mut());
            if LeOutcome::evaluate(&r).success {
                ok += 1;
            }
            crashes += r.metrics.crash_count() as u64;
        }
        rows.push(vec![
            label.to_string(),
            format!("{ok}/{TRIALS}"),
            format!("{:.0}", crashes as f64 / TRIALS as f64),
        ]);
    };

    measure("static: eager mass crash", &mut || {
        Box::new(EagerCrash::new(budget))
    });
    measure("static: random timing", &mut || {
        Box::new(RandomCrash::new(budget, 60))
    });
    measure("static: min-rank assassin", &mut || {
        Box::new(MinRankCrasher::new(budget))
    });
    measure("ADAPTIVE: candidate killer", &mut || {
        Box::new(AdaptiveCandidateKiller::new(budget))
    });

    print_table(&["adversary", "election success", "mean crashes used"], &rows);
    println!();
    println!("shape check: every static schedule succeeds whp; the adaptive killer");
    println!("destroys the Θ(log n/α)-node committee with a tiny fraction of its");
    println!("budget and the election fails — the paper's model boundary, observed.");
}
