//! E11 (extension) — why the *static* adversary assumption matters.
//!
//! The paper's guarantees hold against a static adversary (faulty set
//! fixed before the run, crash timing adaptive). This experiment runs the
//! same leader election against (a) the strongest static schedules and
//! (b) a genuinely *adaptive* adversary that picks its victims after
//! seeing who became a candidate — with the same crash budget. The
//! adaptive adversary wins almost surely because the committee is only
//! `Θ(log n/α)` nodes: an instance of the qualitative gap between the
//! static-adversary bounds of this paper and the adaptive-adversary line
//! of work (Bar-Joseph & Ben-Or '98; Hajiaghayi et al. STOC'22).
//!
//! Declares its grid as an [`ftc_lab`] campaign — `ftc lab run` can
//! execute, persist, and diff the same experiment.
//!
//! ```sh
//! cargo run --release -p ftc-bench --bin fig_adaptive -- [--jobs N] [--trials N] [--seed N] [--smoke]
//! ```

use ftc_bench::{print_table, ExpOpts};
use ftc_core::params::Params;
use ftc_lab::{run_campaign, Adv, CampaignSpec, CellSpec, LabSubstrate, Workload};

const ALPHA: f64 = 0.5;

fn main() {
    let opts = ExpOpts::parse();
    let n = opts.pick(1024u32, 256);
    let trials = opts.trials(20);
    let params = Params::new(n, ALPHA).expect("valid");
    let budget = params.max_faults();
    println!(
        "E11: static vs adaptive adversary, n = {n}, crash budget {budget}, {trials} trials ({})",
        opts.banner()
    );
    println!();

    let schedules = [
        ("static: eager mass crash", Adv::Eager),
        ("static: random timing", Adv::Random(60)),
        ("static: min-rank assassin", Adv::Targeted),
        ("ADAPTIVE: candidate killer", Adv::AdaptiveKiller),
    ];
    let mut spec = CampaignSpec::new("fig-adaptive");
    for &(label, adv) in &schedules {
        spec = spec.cell(
            CellSpec::new(Workload::Le { adv }, n, ALPHA, opts.seed(0xE11), trials).label(label),
        );
    }
    let record = run_campaign(&spec, opts.jobs, LabSubstrate::Engine).expect("campaign");

    let mut rows = Vec::new();
    for (cell, &(label, _)) in record.cells.iter().zip(&schedules) {
        rows.push(vec![
            label.to_string(),
            format!("{}/{trials}", cell.successes),
            format!("{:.0}", cell.crashes.mean),
        ]);
    }
    print_table(
        &["adversary", "election success", "mean crashes used"],
        &rows,
    );
    println!();
    println!("shape check: every static schedule succeeds whp; the adaptive killer");
    println!("destroys the Θ(log n/α)-node committee with a tiny fraction of its");
    println!("budget and the election fails — the paper's model boundary, observed.");
}
