//! E11 (extension) — why the *static* adversary assumption matters.
//!
//! The paper's guarantees hold against a static adversary (faulty set
//! fixed before the run, crash timing adaptive). This experiment runs the
//! same leader election against (a) the strongest static schedules and
//! (b) a genuinely *adaptive* adversary that picks its victims after
//! seeing who became a candidate — with the same crash budget. The
//! adaptive adversary wins almost surely because the committee is only
//! `Θ(log n/α)` nodes: an instance of the qualitative gap between the
//! static-adversary bounds of this paper and the adaptive-adversary line
//! of work (Bar-Joseph & Ben-Or '98; Hajiaghayi et al. STOC'22).
//!
//! ```sh
//! cargo run --release -p ftc-bench --bin fig_adaptive -- [--jobs N] [--trials N] [--seed N] [--smoke]
//! ```

use ftc_bench::{print_table, ExpOpts};
use ftc_core::adversaries::{AdaptiveCandidateKiller, MinRankCrasher};
use ftc_core::leader_election::{LeNode, LeOutcome};
use ftc_core::params::Params;
use ftc_sim::prelude::*;

const ALPHA: f64 = 0.5;

fn main() {
    let opts = ExpOpts::parse();
    let n = opts.pick(1024u32, 256);
    let trials = opts.trials(20);
    let params = Params::new(n, ALPHA).expect("valid");
    let budget = params.max_faults();
    println!(
        "E11: static vs adaptive adversary, n = {n}, crash budget {budget}, {trials} trials ({})",
        opts.banner()
    );
    println!();

    let mut rows = Vec::new();

    let mut measure =
        |label: &str, mk: &(dyn Fn() -> Box<dyn Adversary<ftc_core::messages::LeMsg>> + Sync)| {
            let batch = ParRunner::new(TrialPlan::new(opts.seed(0xE11), trials).jobs(opts.jobs))
                .run(|_, seed| {
                    let cfg = SimConfig::new(n)
                        .seed(seed)
                        .max_rounds(params.le_round_budget());
                    let mut adv = mk();
                    let r = run(&cfg, |_| LeNode::new(params.clone()), adv.as_mut());
                    (
                        LeOutcome::evaluate(&r).success,
                        r.metrics.crash_count() as u64,
                    )
                });
            let ok = batch.values().filter(|(success, _)| *success).count();
            let crashes: u64 = batch.values().map(|(_, c)| c).sum();
            rows.push(vec![
                label.to_string(),
                format!("{ok}/{trials}"),
                format!("{:.0}", crashes as f64 / trials as f64),
            ]);
        };

    measure("static: eager mass crash", &|| {
        Box::new(EagerCrash::new(budget))
    });
    measure("static: random timing", &|| {
        Box::new(RandomCrash::new(budget, 60))
    });
    measure("static: min-rank assassin", &|| {
        Box::new(MinRankCrasher::new(budget))
    });
    measure("ADAPTIVE: candidate killer", &|| {
        Box::new(AdaptiveCandidateKiller::new(budget))
    });

    print_table(
        &["adversary", "election success", "mean crashes used"],
        &rows,
    );
    println!();
    println!("shape check: every static schedule succeeds whp; the adaptive killer");
    println!("destroys the Θ(log n/α)-node committee with a tiny fraction of its");
    println!("budget and the election fails — the paper's model boundary, observed.");
}
