//! E14 (extension) — multi-valued agreement: the `log k` factor.
//!
//! The binary protocol generalises to inputs from `{0..k}` by propagating
//! the minimum (see `ftc_core::multi_agreement`). The predicted costs:
//! `O(log k)` bits per message and up to `log k` improvement waves —
//! so message *bits* grow with `log k` while success stays whp.
//!
//! ```sh
//! cargo run --release -p ftc-bench --bin fig_multivalue -- [--jobs N] [--trials N] [--seed N] [--smoke]
//! ```

use ftc_bench::{fmt_count, print_table, ExpOpts};
use ftc_core::multi_agreement::{MultiAgreeNode, MultiOutcome};
use ftc_core::params::Params;
use ftc_sim::prelude::*;

const ALPHA: f64 = 0.5;

fn main() {
    let opts = ExpOpts::parse();
    let n = opts.pick(2048u32, 512);
    let trials = opts.trials(10);
    let params = Params::new(n, ALPHA).expect("valid");
    let f = params.max_faults();
    println!(
        "E14: multi-valued agreement, n = {n}, alpha = {ALPHA}, {trials} trials ({})",
        opts.banner()
    );
    println!("(inputs uniform in 0..k; (1-alpha)n random crashes)");
    println!();

    let mut rows = Vec::new();
    for &k in &[2u32, 16, 256, 4096, 65536] {
        let cfg = SimConfig::new(n)
            .seed(opts.seed(0xE14))
            .max_rounds(params.agreement_round_budget());
        let results = run_trials_jobs(&cfg, trials, opts.jobs, |c| {
            let mut adv = RandomCrash::new(f, 20);
            let r = run(
                c,
                |id| MultiAgreeNode::new(params.clone(), k, (id.0.wrapping_mul(2654435761)) % k),
                &mut adv,
            );
            let o = MultiOutcome::evaluate(&r);
            (
                o.success,
                r.metrics.msgs_sent,
                r.metrics.bits_sent,
                r.metrics.rounds,
            )
        });
        let ok = results.iter().filter(|t| t.value.0).count();
        let msgs = results.iter().map(|t| t.value.1 as f64).sum::<f64>() / trials as f64;
        let bits = results.iter().map(|t| t.value.2 as f64).sum::<f64>() / trials as f64;
        let rounds = results.iter().map(|t| f64::from(t.value.3)).sum::<f64>() / trials as f64;
        rows.push(vec![
            k.to_string(),
            format!("{ok}/{trials}"),
            fmt_count(msgs),
            fmt_count(bits),
            format!("{:.1}", bits / msgs),
            format!("{rounds:.0}"),
        ]);
    }
    print_table(
        &["k", "success", "msgs", "bits", "bits/msg", "rounds"],
        &rows,
    );
    println!();
    println!("shape checks: success stays ~1.0 for every k; bits/msg grows like");
    println!("log2(k); messages grow mildly (improvement waves), far below any");
    println!("linear-in-k blowup. k = 2 reproduces the binary protocol's costs.");
}
