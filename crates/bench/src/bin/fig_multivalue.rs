//! E14 (extension) — multi-valued agreement: the `log k` factor.
//!
//! The binary protocol generalises to inputs from `{0..k}` by propagating
//! the minimum (see `ftc_core::multi_agreement`). The predicted costs:
//! `O(log k)` bits per message and up to `log k` improvement waves —
//! so message *bits* grow with `log k` while success stays whp.
//!
//! Declares its grid as an [`ftc_lab`] campaign — `ftc lab run` can
//! execute, persist, and diff the same experiment.
//!
//! ```sh
//! cargo run --release -p ftc-bench --bin fig_multivalue -- [--jobs N] [--trials N] [--seed N] [--smoke]
//! ```

use ftc_bench::{fmt_count, print_table, ExpOpts};
use ftc_lab::{run_campaign, CampaignSpec, CellSpec, LabSubstrate, Workload};

const ALPHA: f64 = 0.5;
const KS: [u32; 5] = [2, 16, 256, 4096, 65536];

fn main() {
    let opts = ExpOpts::parse();
    let n = opts.pick(2048u32, 512);
    let trials = opts.trials(10);
    println!(
        "E14: multi-valued agreement, n = {n}, alpha = {ALPHA}, {trials} trials ({})",
        opts.banner()
    );
    println!("(inputs uniform in 0..k; (1-alpha)n random crashes)");
    println!();

    let mut spec = CampaignSpec::new("fig-multivalue");
    for &k in &KS {
        spec = spec.cell(
            CellSpec::new(
                Workload::MultiValue { k },
                n,
                ALPHA,
                opts.seed(0xE14),
                trials,
            )
            .label("multi"),
        );
    }
    let record = run_campaign(&spec, opts.jobs, LabSubstrate::Engine).expect("campaign");

    let mut rows = Vec::new();
    for (cell, &k) in record.cells.iter().zip(&KS) {
        rows.push(vec![
            k.to_string(),
            format!("{}/{trials}", cell.successes),
            fmt_count(cell.msgs.mean),
            fmt_count(cell.bits.mean),
            format!("{:.1}", cell.bits.mean / cell.msgs.mean),
            format!("{:.0}", cell.rounds.mean),
        ]);
    }
    print_table(
        &["k", "success", "msgs", "bits", "bits/msg", "rounds"],
        &rows,
    );
    println!();
    println!("shape checks: success stays ~1.0 for every k; bits/msg grows like");
    println!("log2(k); messages grow mildly (improvement waves), far below any");
    println!("linear-in-k blowup. k = 2 reproduces the binary protocol's costs.");
}
