//! Before/after metrics snapshots for the round hot path.
//!
//! The engine's data plane is aggressively optimised (pooled buffers, flat
//! edge accounting, cached dead-edge sets), and every one of those
//! optimisations is required to be *bit-exact*: identical `Metrics`,
//! `Trace` and protocol states for every `(SimConfig, seed)`. The
//! equivalence suites pin engine-vs-net agreement; this file pins the
//! absolute values, so a refactor that changes both drivers in the same
//! wrong way still fails.
//!
//! The digests below were captured from the pre-optimisation engine
//! (HashMap edge accounting, per-round allocation). To regenerate after an
//! *intentional* semantic change, run
//!
//! ```text
//! cargo test -p ftc-sim --test metrics_snapshot -- --ignored --nocapture
//! ```
//!
//! and paste the printed table over `EXPECTED`.

use std::fmt::Write as _;

use ftc_sim::ids::{NodeId, Port};
use ftc_sim::prelude::*;

/// Deterministic broadcast chatter: every node broadcasts its round number
/// for `talk_rounds` rounds and counts what it hears.
struct Chatter {
    heard: u64,
    rounds: u32,
    talk_rounds: u32,
}

impl Chatter {
    fn factory(talk_rounds: u32) -> impl FnMut(NodeId) -> Chatter {
        move |_| Chatter {
            heard: 0,
            rounds: 0,
            talk_rounds,
        }
    }
}

impl Protocol for Chatter {
    type Msg = u64;
    fn on_start(&mut self, ctx: &mut Ctx<'_, u64>) {
        ctx.broadcast(0);
    }
    fn on_round(&mut self, ctx: &mut Ctx<'_, u64>, inbox: &[Incoming<u64>]) {
        self.heard += inbox.len() as u64;
        self.rounds += 1;
        if self.rounds < self.talk_rounds {
            ctx.broadcast(u64::from(ctx.round()));
        }
    }
    fn is_terminated(&self) -> bool {
        self.rounds >= self.talk_rounds
    }
}

/// Sends 3 messages down port 0 every round — duplicate-destination
/// traffic, the hard case for per-edge accounting.
struct FatPipe {
    rounds: u32,
}

impl Protocol for FatPipe {
    type Msg = u64;
    fn on_start(&mut self, ctx: &mut Ctx<'_, u64>) {
        for k in 0..3 {
            ctx.send(Port(0), k);
        }
    }
    fn on_round(&mut self, ctx: &mut Ctx<'_, u64>, _inbox: &[Incoming<u64>]) {
        self.rounds += 1;
        if self.rounds < 2 {
            for k in 0..3 {
                ctx.send(Port(0), k);
            }
        }
    }
    fn is_terminated(&self) -> bool {
        self.rounds >= 2
    }
}

fn fnv1a64(text: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in text.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Canonical rendering of everything a run produced that the hot path can
/// influence: full metrics (including per-round lines), crash ledger,
/// per-node heard counts, and the complete trace.
fn digest<P: Protocol>(r: &RunResult<P>, heard: impl Fn(&P) -> u64) -> u64 {
    let m = &r.metrics;
    let mut s = String::new();
    let _ = write!(
        s,
        "sent={} delivered={} suppressed={} lost={} bits={} rounds={} maxedge={} wire={}",
        m.msgs_sent,
        m.msgs_delivered,
        m.msgs_suppressed,
        m.msgs_lost_edges,
        m.bits_sent,
        m.rounds,
        m.max_edge_bits_per_round,
        m.wire_bytes,
    );
    let _ = write!(s, " congest={}", r.congest_violations);
    for rm in &m.per_round {
        let _ = write!(
            s,
            " [{} {} {} {}]",
            rm.sent, rm.delivered, rm.bits_sent, rm.crashes
        );
    }
    for (node, round) in &m.crashes {
        let _ = write!(s, " x{}@{}", node.0, round);
    }
    for c in &r.crashed_at {
        let _ = write!(s, " c{:?}", c.map(|r| r));
    }
    for st in &r.states {
        let _ = write!(s, " h{}", heard(st));
    }
    if let Some(tr) = &r.trace {
        for e in tr.events() {
            let _ = write!(
                s,
                " t{},{},{},{},{}",
                e.round, e.src.0, e.dst.0, e.delivered, e.bits
            );
        }
    }
    fnv1a64(&s)
}

struct Scenario {
    name: &'static str,
    run: fn() -> u64,
}

fn s1_fault_free() -> u64 {
    let cfg = SimConfig::new(24).seed(7).max_rounds(10);
    let r = run(&cfg, Chatter::factory(3), &mut NoFaults);
    digest(&r, |s| s.heard)
}

fn s2_eager_crash_traced() -> u64 {
    let cfg = SimConfig::new(24).seed(7).max_rounds(10).record_trace(true);
    let mut adv = EagerCrash::new(6);
    let r = run(&cfg, Chatter::factory(3), &mut adv);
    digest(&r, |s| s.heard)
}

fn s3_random_crash_congest() -> u64 {
    let cfg = SimConfig::new(32)
        .seed(11)
        .max_rounds(12)
        .record_trace(true)
        .congest_bits(64);
    let mut adv = RandomCrash::new(8, 6);
    let r = run(&cfg, Chatter::factory(4), &mut adv);
    digest(&r, |s| s.heard)
}

fn s4_edge_failures_capped() -> u64 {
    let cfg = SimConfig::new(32)
        .seed(13)
        .max_rounds(12)
        .edge_failure_prob(0.3)
        .send_cap(40);
    let r = run(&cfg, Chatter::factory(4), &mut NoFaults);
    digest(&r, |s| s.heard)
}

fn s5_scripted_filters_traced() -> u64 {
    let plan = FaultPlan::new()
        .crash(NodeId(0), 0, DeliveryFilter::KeepFirst(2))
        .crash(
            NodeId(1),
            1,
            DeliveryFilter::DeliverEachWithProbability(0.5),
        )
        .crash(
            NodeId(2),
            2,
            DeliveryFilter::KeepToDestinations(vec![NodeId(3), NodeId(4)]),
        )
        .crash(NodeId(3), 2, DeliveryFilter::DropAll);
    let cfg = SimConfig::new(16).seed(3).max_rounds(8).record_trace(true);
    let mut adv = ScriptedCrash::new(plan);
    let r = run(&cfg, Chatter::factory(4), &mut adv);
    digest(&r, |s| s.heard)
}

fn s6_congested_duplicates() -> u64 {
    let cfg = SimConfig::new(6).seed(2).max_rounds(4).congest_bits(100);
    let r = run(&cfg, |_| FatPipe { rounds: 0 }, &mut NoFaults);
    digest(&r, |s| u64::from(s.rounds))
}

const SCENARIOS: &[Scenario] = &[
    Scenario {
        name: "s1_fault_free",
        run: s1_fault_free,
    },
    Scenario {
        name: "s2_eager_crash_traced",
        run: s2_eager_crash_traced,
    },
    Scenario {
        name: "s3_random_crash_congest",
        run: s3_random_crash_congest,
    },
    Scenario {
        name: "s4_edge_failures_capped",
        run: s4_edge_failures_capped,
    },
    Scenario {
        name: "s5_scripted_filters_traced",
        run: s5_scripted_filters_traced,
    },
    Scenario {
        name: "s6_congested_duplicates",
        run: s6_congested_duplicates,
    },
];

/// Digests captured from the pre-optimisation engine. Any divergence means
/// the hot path changed observable behaviour.
const EXPECTED: &[(&str, u64)] = &[
    ("s1_fault_free", 11740913572704876146),
    ("s2_eager_crash_traced", 8421462384765927319),
    ("s3_random_crash_congest", 13218540456772022160),
    ("s4_edge_failures_capped", 17374930813647428676),
    ("s5_scripted_filters_traced", 7150392567238512826),
    ("s6_congested_duplicates", 9553623736567263353),
];

#[test]
fn metrics_match_pre_optimisation_snapshots() {
    for sc in SCENARIOS {
        let got = (sc.run)();
        let want = EXPECTED
            .iter()
            .find(|(name, _)| *name == sc.name)
            .unwrap_or_else(|| panic!("no expected digest for {}", sc.name))
            .1;
        assert_eq!(
            got, want,
            "scenario {} drifted from the pre-optimisation engine",
            sc.name
        );
    }
}

/// Regeneration helper, not a check: prints the current digests in the
/// `EXPECTED` format.
#[test]
#[ignore = "regeneration helper; run with --ignored --nocapture"]
fn print_current_digests() {
    for sc in SCENARIOS {
        println!("    (\"{}\", {}),", sc.name, (sc.run)());
    }
}
