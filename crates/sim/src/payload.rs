//! Message payloads and CONGEST size accounting.
//!
//! The paper works in the CONGEST model: a node may send `O(log n)` bits
//! through an edge per round (Section II), and Remark 1 notes that message
//! complexity in *bits* may exceed the count in *messages* by an `O(log n)`
//! factor. To measure both, every protocol message implements [`Payload`]
//! and reports its own size in bits; the engine aggregates totals and tracks
//! the worst per-edge-per-round load so CONGEST violations are observable.

/// A protocol message that knows its own encoded size.
///
/// Implementations should report the size of a *reasonable wire encoding*,
/// not of the in-memory Rust struct. The paper's protocols send ranks drawn
/// from `[1, n⁴]` (≈ `4·log₂ n` bits) and constant-size control fields.
pub trait Payload: Clone + Send + 'static {
    /// Encoded size of this message in bits.
    fn size_bits(&self) -> u32;
}

/// The empty message: a pure "signal" carrying one bit of presence.
impl Payload for () {
    fn size_bits(&self) -> u32 {
        1
    }
}

/// A single-bit payload (e.g. the agreement protocol's value messages).
impl Payload for bool {
    fn size_bits(&self) -> u32 {
        1
    }
}

/// A raw integer payload; sized as its full width for conservatism.
impl Payload for u64 {
    fn size_bits(&self) -> u32 {
        64
    }
}

/// A payload that can cross a real wire.
///
/// The simulator moves messages between nodes as Rust values and never
/// needs this; the `ftc-net` runtime serialises them into length-prefixed
/// frames. Encodings are hand-rolled (no serde in the tree): they only
/// need to round-trip (`decode(encode(m)) == m`), not to be canonical or
/// cross-version stable. [`Payload::size_bits`] stays the *model* cost —
/// the wire encoding may be byte-aligned and larger.
pub trait Wire: Payload {
    /// Appends this message's encoding to `buf`.
    fn encode(&self, buf: &mut Vec<u8>);

    /// Decodes one message from `bytes`, which holds exactly one encoding.
    ///
    /// Returns `None` on malformed input (truncated frame, unknown tag).
    fn decode(bytes: &[u8]) -> Option<Self>;
}

impl Wire for () {
    fn encode(&self, _buf: &mut Vec<u8>) {}
    fn decode(bytes: &[u8]) -> Option<Self> {
        bytes.is_empty().then_some(())
    }
}

impl Wire for bool {
    fn encode(&self, buf: &mut Vec<u8>) {
        buf.push(u8::from(*self));
    }
    fn decode(bytes: &[u8]) -> Option<Self> {
        match bytes {
            [0] => Some(false),
            [1] => Some(true),
            _ => None,
        }
    }
}

impl Wire for u64 {
    fn encode(&self, buf: &mut Vec<u8>) {
        buf.extend_from_slice(&self.to_le_bytes());
    }
    fn decode(bytes: &[u8]) -> Option<Self> {
        Some(u64::from_le_bytes(bytes.try_into().ok()?))
    }
}

/// Number of bits needed to encode a value drawn from `[0, bound)`.
///
/// Convenience for implementing [`Payload::size_bits`] on messages carrying
/// ranks or counters with a known range.
///
/// ```
/// use ftc_sim::payload::bits_for;
/// assert_eq!(bits_for(1), 1);
/// assert_eq!(bits_for(2), 1);
/// assert_eq!(bits_for(256), 8);
/// assert_eq!(bits_for(257), 9);
/// ```
pub fn bits_for(bound: u64) -> u32 {
    if bound <= 2 {
        1
    } else {
        64 - (bound - 1).leading_zeros()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_and_bool_are_one_bit() {
        assert_eq!(().size_bits(), 1);
        assert_eq!(true.size_bits(), 1);
        assert_eq!(false.size_bits(), 1);
    }

    #[test]
    fn bits_for_powers_of_two() {
        assert_eq!(bits_for(2), 1);
        assert_eq!(bits_for(4), 2);
        assert_eq!(bits_for(1 << 20), 20);
    }

    #[test]
    fn wire_roundtrips() {
        fn rt<T: Wire + PartialEq + std::fmt::Debug>(v: T) {
            let mut buf = Vec::new();
            v.encode(&mut buf);
            assert_eq!(T::decode(&buf), Some(v));
        }
        rt(());
        rt(true);
        rt(false);
        rt(0u64);
        rt(u64::MAX);
        rt(0xDEAD_BEEFu64);
        assert_eq!(<bool as Wire>::decode(&[7]), None);
        assert_eq!(<u64 as Wire>::decode(&[1, 2]), None);
        assert_eq!(<() as Wire>::decode(&[0]), None);
    }

    #[test]
    fn bits_for_rank_domain() {
        // Ranks live in [1, n^4]; for n = 2^10 that is 40 bits.
        let n: u64 = 1 << 10;
        assert_eq!(bits_for(n.pow(4)), 40);
    }
}
