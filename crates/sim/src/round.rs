//! The transport-agnostic round control core.
//!
//! [`crate::engine::run`] (the in-process simulator) and the `ftc-net`
//! runtime (real sockets) execute the *same* model: per round, every alive
//! node is activated, the adversary inspects the round's traffic and issues
//! crash directives, delivery filters drop an adversarial subset of each
//! crashing node's messages, and the survivors are delivered. Everything in
//! that sentence except the activation and the physical delivery is
//! *control-plane* logic, and it is deterministic in `(SimConfig, seed)`.
//!
//! [`ControlCore`] packages exactly that control plane: the faulty set, the
//! liveness ledger, the adversary/filter RNG streams, metrics, CONGEST and
//! trace accounting. A driver (engine or network synchronizer) feeds it the
//! round's outgoing envelopes and gets back the envelopes to actually
//! deliver plus the crash events to enact (in a socket runtime: mid-round
//! connection teardown). Because both drivers share this type and the seed
//! derivation below, a network execution reproduces the simulator's
//! decisions bit for bit.

use rand::rngs::SmallRng;
use rand::SeedableRng;

use crate::adversary::{Adversary, AdversaryView, Envelope, FaultySet};
use crate::engine::SimConfig;
use crate::ids::{NodeId, Port, Round};
use crate::metrics::{Metrics, RoundMetrics};
use crate::payload::Payload;
use crate::perm::stream_seed;
use crate::ports::PortMap;
use crate::trace::{Trace, TraceEvent};

/// Salt constants keeping the run's RNG streams independent. Shared by the
/// engine and the per-node harness so every driver derives the same
/// topology, node randomness, adversary schedule and filter randomness
/// from one master seed.
pub(crate) const SALT_TOPOLOGY: u64 = 0x01;
pub(crate) const SALT_NODES: u64 = 0x02;
pub(crate) const SALT_ADVERSARY: u64 = 0x03;
pub(crate) const SALT_FILTERS: u64 = 0x04;
pub(crate) const SALT_EDGES: u64 = 0x05;

/// The topology seed of a run: every node's port permutation derives from
/// it (see [`PortMap::new`]).
pub fn topology_seed(cfg: &SimConfig) -> u64 {
    stream_seed(cfg.seed, SALT_TOPOLOGY)
}

/// The port permutations of the whole network, in node-id order.
///
/// Each [`PortMap`] is `O(1)` memory (lazy Feistel permutation), so this is
/// cheap even for large `n`. Drivers that resolve destination ports
/// centrally (the engine, the net coordinator) build one of these.
pub fn network_ports(cfg: &SimConfig) -> Vec<PortMap> {
    let seed = topology_seed(cfg);
    let adjacency = cfg.topology.adjacency(cfg.n, seed);
    (0..cfg.n)
        .map(|i| {
            let node = NodeId(i);
            PortMap::with_wiring(
                cfg.n,
                node,
                seed,
                cfg.topology.wiring_of(node, adjacency.as_ref()),
            )
        })
        .collect()
}

/// Resolves one node's queued `(port, msg)` sends into routed envelopes,
/// exactly as the engine does: `dst` from the sender's permutation,
/// `dst_port` from the receiver's.
pub fn resolve_sends<M>(
    ports: &[PortMap],
    src: NodeId,
    mut sends: Vec<(Port, M)>,
) -> Vec<Envelope<M>> {
    let mut out = Vec::with_capacity(sends.len());
    resolve_sends_into(ports, src, &mut sends, &mut out);
    out
}

/// Allocation-free variant of [`resolve_sends`]: drains `sends` and writes
/// the routed envelopes into `out` (cleared first). The engine calls this
/// once per node per round with pooled buffers, so steady-state rounds
/// resolve without touching the allocator.
pub fn resolve_sends_into<M>(
    ports: &[PortMap],
    src: NodeId,
    sends: &mut Vec<(Port, M)>,
    out: &mut Vec<Envelope<M>>,
) {
    out.clear();
    out.reserve(sends.len());
    let src_ports = &ports[src.index()];
    for (port, msg) in sends.drain(..) {
        let dst = src_ports.peer(port);
        out.push(Envelope {
            src,
            dst,
            dst_port: ports[dst.index()].port_to(src),
            msg,
        });
    }
}

/// What the control core decided for one round.
///
/// The deliverable traffic itself is *not* carried here: `finish_round`
/// filters the caller's `outgoing` buffers in place, so after the call
/// `outgoing` holds, per sender (node-id order), exactly the envelopes that
/// survived crash filters *and* are deliverable (receiver alive, edge
/// alive). A driver delivers exactly those — iterating senders in id order
/// and each sender's list in order reproduces the engine's inbox order —
/// and may then drain the buffers for reuse next round.
#[derive(Debug)]
pub struct RoundVerdict {
    /// Nodes that crashed this round, in directive order. A socket driver
    /// tears down their connections after transmitting their filtered
    /// sends; they must never be activated again.
    pub crashed: Vec<NodeId>,
    /// Messages delivered this round (the filtered `outgoing` flattened
    /// length).
    pub delivered: u64,
    /// Senders *outside* the touched list handed to
    /// [`ControlCore::finish_round_touched`] whose output the adversary
    /// conjured by tampering, in id order. A sparse driver must drain
    /// these buffers alongside its own touched list (merged in id order);
    /// always empty for dense drivers and crash-only adversaries.
    pub tampered_extra: Vec<NodeId>,
}

/// Everything the control core accumulated over a finished run.
#[derive(Debug)]
pub struct ControlOutput {
    /// Accounting (messages, bits, rounds, congestion, crashes).
    pub metrics: Metrics,
    /// For each node, the round it crashed in (`None` = survived).
    pub crashed_at: Vec<Option<Round>>,
    /// The faulty set the adversary committed to.
    pub faulty: FaultySet,
    /// The message trace, when recording was enabled.
    pub trace: Option<Trace>,
    /// Rounds × edges over the configured CONGEST budget (0 if unchecked).
    pub congest_violations: u64,
}

/// Largest number of unordered node pairs for which [`DeadEdgeCache`]
/// will materialise its bitmap (2 bits per pair ⇒ ≤ 32 MiB).
const MAX_CACHED_EDGE_PAIRS: u64 = 1 << 27;

/// Whether the undirected edge `{lo, hi}` is dead, by the same hash roll
/// the engine has always used. `lo < hi` canonicalizes the pair so both
/// directions agree.
#[inline]
fn edge_roll(edge_seed: u64, lo: u32, hi: u32, p: f64) -> bool {
    let key = (u64::from(lo) << 32) | u64::from(hi);
    let h = stream_seed(edge_seed, key);
    (h as f64 / u64::MAX as f64) < p
}

/// The per-run fate of every undirected edge, sampled lazily.
///
/// [`SimConfig::edge_failure_prob`] kills each undirected edge for the
/// whole run. A fate is a pure hash of `(edge seed, canonical pair)` — the
/// same `stream_seed` roll in both directions, in every round, from any
/// thread — so the data plane samples it on demand for exactly the edges a
/// message actually crosses and never materialises anything per pair.
/// That makes a round cost `O(traffic)` where the eager per-pair bitmap
/// was `Θ(n²)` memory. [`DeadEdgeCache`] memoises the identical roll and
/// is retained as the oracle the property suite pins this sampler against.
#[derive(Clone, Copy, Debug)]
pub struct EdgeFates {
    edge_seed: u64,
    p: f64,
}

impl EdgeFates {
    /// The edge fates of a run of `cfg`, derived from the master seed the
    /// same way for every driver.
    pub fn new(cfg: &SimConfig) -> Self {
        EdgeFates {
            edge_seed: stream_seed(cfg.seed, SALT_EDGES),
            p: cfg.edge_failure_prob,
        }
    }

    /// The failure probability the fates are drawn against.
    pub fn failure_prob(&self) -> f64 {
        self.p
    }

    /// Whether the undirected edge `{a, b}` is dead. Order-insensitive and
    /// stateless: any query order over any subset of edges draws the same
    /// fates.
    ///
    /// # Panics
    ///
    /// Panics if `a == b` — the complete graph has no self edge.
    #[inline]
    pub fn is_dead(&self, a: NodeId, b: NodeId) -> bool {
        assert_ne!(a, b, "no self edge");
        let (lo, hi) = if a.0 < b.0 { (a.0, b.0) } else { (b.0, a.0) };
        edge_roll(self.edge_seed, lo, hi, self.p)
    }
}

/// Eagerly memoised dead-edge set: the reference implementation the lazy
/// [`EdgeFates`] sampler is tested against.
///
/// Caches each pair's verdict in a packed bitmap (2 bits per pair: known +
/// dead) the first time the pair is queried. No longer used by the data
/// plane — the bitmap is `Θ(n²)` and refuses to build past
/// `MAX_CACHED_EDGE_PAIRS` — but kept public so the equivalence property
/// test can pin `EdgeFates` to the historical rolls per `(seed, edge)`.
#[derive(Debug)]
pub struct DeadEdgeCache {
    n: u64,
    bits: Vec<u64>,
}

impl DeadEdgeCache {
    /// A cache for `n` nodes, or `None` when the pair count would make the
    /// bitmap unreasonably large.
    pub fn new(n: u32) -> Option<Self> {
        let pairs = u64::from(n) * u64::from(n - 1) / 2;
        if pairs > MAX_CACHED_EDGE_PAIRS {
            return None;
        }
        Some(DeadEdgeCache {
            n: u64::from(n),
            bits: vec![0; (pairs * 2).div_ceil(64) as usize],
        })
    }

    /// Whether the undirected edge `{a, b}` is dead under `fates`,
    /// memoising the roll.
    ///
    /// # Panics
    ///
    /// Panics if `a == b`.
    #[inline]
    pub fn is_dead(&mut self, a: u32, b: u32, fates: &EdgeFates) -> bool {
        assert_ne!(a, b, "no self edge");
        let (lo, hi) = if a < b { (a, b) } else { (b, a) };
        // Row-major upper-triangle index of the pair (lo, hi), lo < hi.
        let l = u64::from(lo);
        let idx = l * (2 * self.n - l - 1) / 2 + (u64::from(hi) - l - 1);
        let w = (idx / 32) as usize;
        let sh = (idx % 32) * 2;
        let word = self.bits[w];
        if (word >> sh) & 1 == 1 {
            return (word >> (sh + 1)) & 1 == 1;
        }
        let dead = edge_roll(fates.edge_seed, lo, hi, fates.p);
        self.bits[w] = word | (1 << sh) | (u64::from(dead) << (sh + 1));
        dead
    }
}

/// The deterministic control plane of one execution: faulty set, liveness,
/// adversary consultation, delivery filtering, and all accounting.
///
/// Drivers call [`ControlCore::finish_round`] once per round with the
/// round's outgoing traffic and then enact the returned
/// [`RoundVerdict`]; [`ControlCore::finish`] yields the final books.
///
/// The core owns the hot path's scratch memory (flat edge accumulator,
/// dead-edge cache, trace spans), so steady-state rounds run without
/// allocating; see `DESIGN.md` § "Round-buffer memory layout".
#[derive(Debug)]
pub struct ControlCore {
    n: u32,
    alive: Vec<bool>,
    dead_count: u32,
    crashed_at: Vec<Option<Round>>,
    faulty: FaultySet,
    metrics: Metrics,
    trace: Option<Trace>,
    congest_bits: Option<u32>,
    congest_violations: u64,
    /// Lazily sampled per-edge fates (replaces the old `Θ(n²)` bitmap).
    fates: EdgeFates,
    adv_rng: SmallRng,
    filter_rng: SmallRng,
    /// Per-destination bit accumulator for the sender currently being
    /// accounted: bit 0 marks "touched this sender", bits 1.. hold the
    /// accumulated size. Reset (via `edge_touched`) after every sender, so
    /// it is all-zero between senders and between rounds.
    edge_acc: Vec<u64>,
    /// Destinations with a set mark in `edge_acc`, for O(touched) reset.
    edge_touched: Vec<u32>,
    /// Per-sender `(start, end)` ranges into the trace's event list for the
    /// current round — lets trace patching scan one sender's events instead
    /// of the whole round tail. Only the spans of the round's touched
    /// senders are refreshed; a stale span is only ever consulted for a
    /// sender with no outgoing traffic, where patching is a no-op.
    trace_spans: Vec<(usize, usize)>,
    /// Cached `0..n` sender list backing the dense [`ControlCore::finish_round`]
    /// wrapper, so legacy dense drivers stay allocation-free per round.
    all_senders: Vec<u32>,
}

impl ControlCore {
    /// Builds the control plane for one run and asks `adversary` for its
    /// static faulty set.
    ///
    /// # Panics
    ///
    /// Panics if the faulty set references nodes outside the network.
    pub fn new<M, A>(cfg: &SimConfig, adversary: &mut A) -> Self
    where
        M: Payload,
        A: Adversary<M> + ?Sized,
    {
        let n = cfg.n;
        let nn = n as usize;
        let mut adv_rng = SmallRng::seed_from_u64(stream_seed(cfg.seed, SALT_ADVERSARY));
        let filter_rng = SmallRng::seed_from_u64(stream_seed(cfg.seed, SALT_FILTERS));
        let faulty = adversary.faulty_set(n, &mut adv_rng);
        assert!(
            faulty.iter().all(|id| id.index() < nn),
            "faulty set references nodes outside the network"
        );
        ControlCore {
            n,
            alive: vec![true; nn],
            dead_count: 0,
            crashed_at: vec![None; nn],
            faulty,
            metrics: Metrics::new(),
            trace: cfg.record_trace.then(|| Trace::new(n)),
            congest_bits: cfg.congest_bits,
            congest_violations: 0,
            fates: EdgeFates::new(cfg),
            adv_rng,
            filter_rng,
            edge_acc: vec![0; nn],
            edge_touched: Vec::new(),
            trace_spans: Vec::new(),
            all_senders: Vec::new(),
        }
    }

    /// Network size.
    pub fn n(&self) -> u32 {
        self.n
    }

    /// Whether `node` is still alive.
    pub fn is_alive(&self, node: NodeId) -> bool {
        self.alive[node.index()]
    }

    /// The liveness ledger, indexed by node.
    pub fn alive(&self) -> &[bool] {
        &self.alive
    }

    /// Number of still-alive nodes.
    pub fn alive_count(&self) -> usize {
        self.alive.iter().filter(|&&a| a).count()
    }

    /// The adversary's static faulty set.
    pub fn faulty(&self) -> &FaultySet {
        &self.faulty
    }

    /// The run's lazily sampled edge fates.
    pub fn edge_fates(&self) -> EdgeFates {
        self.fates
    }

    /// Runs the control plane for one round over the traffic the alive
    /// nodes queued (`outgoing`, indexed by sender; entries of dead nodes
    /// must be empty). Consults the adversary (tamper, then crash
    /// directives), applies delivery filters, accounts metrics / CONGEST /
    /// trace, and returns what to deliver and whom to crash.
    ///
    /// `suppressed` is the number of sends the nodes dropped against their
    /// send budget this round (see [`SimConfig::send_cap`]).
    ///
    /// # Panics
    ///
    /// Panics if the adversary violates the model (crashing or tampering
    /// with a non-faulty or already-crashed node).
    pub fn finish_round<M, A>(
        &mut self,
        round: Round,
        outgoing: &mut [Vec<Envelope<M>>],
        suppressed: u64,
        adversary: &mut A,
        ports: &[PortMap],
    ) -> RoundVerdict
    where
        M: Payload,
        A: Adversary<M> + ?Sized,
    {
        // Dense wrapper: every node is a potential sender. Sparse drivers
        // (the engine's agenda loop) call `finish_round_touched` directly.
        let mut all = std::mem::take(&mut self.all_senders);
        if all.len() != outgoing.len() {
            all.clear();
            all.extend(0..outgoing.len() as u32);
        }
        let verdict =
            self.finish_round_touched(round, outgoing, &all, suppressed, adversary, ports);
        self.all_senders = all;
        verdict
    }

    /// Sparse variant of [`ControlCore::finish_round`]: runs the identical
    /// control plane while visiting only `touched` senders, so the round
    /// costs `O(touched + traffic)` instead of `O(n)`.
    ///
    /// `touched` must be sorted ascending, deduplicated, and contain every
    /// sender whose `outgoing` entry is non-empty (entries of other nodes
    /// are ignored and must be empty). Nodes the adversary tampers with are
    /// merged in automatically. Because senders with empty buffers
    /// contribute nothing to accounting, tracing or delivery, the verdict,
    /// metrics and filtered buffers are bit-identical to the dense walk.
    pub fn finish_round_touched<M, A>(
        &mut self,
        round: Round,
        outgoing: &mut [Vec<Envelope<M>>],
        touched_senders: &[u32],
        suppressed: u64,
        adversary: &mut A,
        ports: &[PortMap],
    ) -> RoundVerdict
    where
        M: Payload,
        A: Adversary<M> + ?Sized,
    {
        let n = self.n;
        debug_assert!(
            touched_senders.windows(2).all(|w| w[0] < w[1]),
            "touched sender list must be sorted and deduplicated"
        );
        self.metrics.msgs_suppressed += suppressed;

        // --- Byzantine tampering (extension; no-op for crash-only
        // adversaries). Forged sends replace the node's honest output.
        let tampers = {
            let view = AdversaryView {
                round,
                n,
                faulty: &self.faulty,
                alive: &self.alive,
                outgoing,
            };
            adversary.tamper(&view, &mut self.adv_rng)
        };
        let mut extra_senders: Vec<u32> = Vec::new();
        for t in tampers {
            let i = t.node.index();
            assert!(
                self.faulty.contains(t.node),
                "adversary tampered with non-faulty node {}",
                t.node
            );
            assert!(
                self.alive[i],
                "adversary tampered with crashed node {}",
                t.node
            );
            if touched_senders.binary_search(&t.node.0).is_err() {
                extra_senders.push(t.node.0);
            }
            outgoing[i] = t
                .sends
                .into_iter()
                .filter_map(|(dst, msg)| {
                    assert!(dst.0 < n, "forged message to node outside network");
                    assert_ne!(dst, t.node, "forged message to self");
                    // Even a Byzantine node can only use edges that exist:
                    // forged sends along non-edges are dropped silently.
                    let dst_port = ports[dst.index()].try_port_to(t.node)?;
                    Some(Envelope {
                        src: t.node,
                        dst,
                        dst_port,
                        msg,
                    })
                })
                .collect();
        }
        // A tamper may conjure traffic for a sender outside the touched
        // list; fold those in (rare — only Byzantine extensions hit this)
        // and report them in the verdict so sparse drivers drain them.
        extra_senders.sort_unstable();
        let tampered_extra: Vec<NodeId> = extra_senders.iter().map(|&u| NodeId(u)).collect();
        let merged: Vec<u32>;
        let touched_senders: &[u32] = if extra_senders.is_empty() {
            touched_senders
        } else {
            let mut m: Vec<u32> = touched_senders
                .iter()
                .copied()
                .chain(extra_senders)
                .collect();
            m.sort_unstable();
            merged = m;
            &merged
        };

        // --- adversary: crash directives for this round. ---
        let directives = {
            let view = AdversaryView {
                round,
                n,
                faulty: &self.faulty,
                alive: &self.alive,
                outgoing,
            };
            adversary.on_round(&view, &mut self.adv_rng)
        };

        let mut crashes_this_round = 0u32;
        let mut crashed = Vec::new();
        let mut sent: u64 = 0;
        let mut bits_sent: u64 = 0;
        for &su in touched_senders {
            let node_out = &outgoing[su as usize];
            sent += node_out.len() as u64;
            bits_sent += node_out
                .iter()
                .map(|e| u64::from(e.msg.size_bits()))
                .sum::<u64>();
        }

        // Record every *sent* message in the trace before filtering, so the
        // communication graph also knows about suppressed sends. Touched
        // senders are walked in id order, so events land exactly where the
        // dense walk put them; each sender's events are contiguous, and the
        // span is remembered so patching below touches only that sender's
        // slice. Spans of untouched senders go stale, which is safe: a
        // stale span is only consulted for a sender with an empty buffer,
        // where the patch has nothing to drop.
        if let Some(tr) = self.trace.as_mut() {
            self.trace_spans.resize(outgoing.len(), (0, 0));
            for &su in touched_senders {
                let u = su as usize;
                let start = tr.events().len();
                for e in &outgoing[u] {
                    tr.push(TraceEvent {
                        round,
                        src: e.src,
                        dst: e.dst,
                        delivered: true, // patched below if suppressed / dst dead
                        bits: e.msg.size_bits(),
                    });
                }
                self.trace_spans[u] = (start, tr.events().len());
            }
        }
        for d in directives {
            let i = d.node.index();
            assert!(
                self.faulty.contains(d.node),
                "adversary crashed non-faulty node {}",
                d.node
            );
            assert!(self.alive[i], "adversary crashed {} twice", d.node);
            self.alive[i] = false;
            self.dead_count += 1;
            self.crashed_at[i] = Some(round);
            self.metrics.record_crash(d.node, round);
            crashes_this_round += 1;
            crashed.push(d.node);

            if let Some(tr) = &mut self.trace {
                // Trace events were recorded optimistically; mark the drops
                // by diffing the destination multiset across the filter.
                let before_dsts: Vec<NodeId> = outgoing[i].iter().map(|e| e.dst).collect();
                d.filter.apply(&mut outgoing[i], &mut self.filter_rng);
                let mut kept_dsts: Vec<NodeId> = outgoing[i].iter().map(|e| e.dst).collect();
                let (start, end) = self.trace_spans[i];
                patch_trace_span(
                    &mut tr.events_mut()[start..end],
                    &before_dsts,
                    &mut kept_dsts,
                );
            } else {
                d.filter.apply(&mut outgoing[i], &mut self.filter_rng);
            }
        }

        // --- delivery + accounting. ---
        //
        // Filters `outgoing` in place (stable compaction) and accounts
        // per-edge bits through the flat `edge_acc` accumulator — one array
        // slot per destination, valid because a sender's envelopes are
        // processed as one group and directed edges of different senders
        // never collide. No allocation, no hashing. Edge fates are sampled
        // lazily per crossed edge ([`EdgeFates`]), so a round's cost never
        // depends on how many edges the complete graph *has*.
        let mut delivered: u64 = 0;
        let mut round_max_edge: u64 = 0;
        let fates = self.fates;
        let p = fates.p;
        let budget = self.congest_bits.map(u64::from);
        let all_dsts_alive = self.dead_count == 0;

        let alive = &self.alive;
        let metrics = &mut self.metrics;
        let violations = &mut self.congest_violations;
        let edge_acc = &mut self.edge_acc;
        let touched = &mut self.edge_touched;
        let spans = &self.trace_spans;
        let mut trace = self.trace.as_mut();

        for &su in touched_senders {
            let u = su as usize;
            let node_out = &mut outgoing[u];
            if node_out.is_empty() {
                continue;
            }
            // Per-edge accounting for this sender. Bit 0 of an accumulator
            // slot marks "touched", bits 1.. hold the running size, so even
            // zero-bit messages register their edge exactly once.
            for e in node_out.iter() {
                let bits = u64::from(e.msg.size_bits());
                let di = e.dst.index();
                let cur = edge_acc[di];
                if cur & 1 == 0 {
                    touched.push(e.dst.0);
                }
                edge_acc[di] = (cur + (bits << 1)) | 1;
            }
            for &d in touched.iter() {
                let v = edge_acc[d as usize] >> 1;
                round_max_edge = round_max_edge.max(v);
                if budget.is_some_and(|b| v > b) {
                    *violations += 1;
                }
                edge_acc[d as usize] = 0;
            }
            touched.clear();

            if p <= 0.0 && all_dsts_alive {
                // Fast path: nothing can drop; everything queued delivers.
                delivered += node_out.len() as u64;
                continue;
            }
            let src = NodeId(su);
            let mut w = 0usize;
            for r_i in 0..node_out.len() {
                let dst = node_out[r_i].dst;
                let edge_is_dead = p > 0.0 && fates.is_dead(src, dst);
                if edge_is_dead {
                    metrics.msgs_lost_edges += 1;
                    if let Some(tr) = trace.as_deref_mut() {
                        let (start, end) = spans[u];
                        mark_undelivered_span(&mut tr.events_mut()[start..end], dst);
                    }
                } else if alive[dst.index()] {
                    delivered += 1;
                    if w != r_i {
                        node_out.swap(w, r_i);
                    }
                    w += 1;
                } else if let Some(tr) = trace.as_deref_mut() {
                    let (start, end) = spans[u];
                    mark_undelivered_span(&mut tr.events_mut()[start..end], dst);
                }
            }
            node_out.truncate(w);
        }
        metrics.record_edge_bits(round_max_edge);

        self.metrics.record_round(RoundMetrics {
            sent,
            delivered,
            bits_sent,
            crashes: crashes_this_round,
        });

        RoundVerdict {
            crashed,
            delivered,
            tampered_extra,
        }
    }

    /// Records the total number of bytes the run pushed onto the wire
    /// (frame headers + encoded payloads + round markers). The engine
    /// leaves this at 0; socket drivers report real byte counts.
    pub fn record_wire_bytes(&mut self, bytes: u64) {
        self.metrics.wire_bytes += bytes;
    }

    /// Closes the books: final metrics, crash ledger, faulty set, trace.
    pub fn finish(self) -> ControlOutput {
        ControlOutput {
            metrics: self.metrics,
            crashed_at: self.crashed_at,
            faulty: self.faulty,
            trace: self.trace,
            congest_violations: self.congest_violations,
        }
    }
}

/// Marks as undelivered the events in one sender's current-round span
/// whose destination does not appear in `kept_dsts` (multiset semantics).
///
/// `events` is the contiguous slice of this sender's events for the round
/// (every event in it has the same round and src), so no round/src
/// matching is needed — the scan is O(span), not O(trace).
fn patch_trace_span(
    events: &mut [TraceEvent],
    before_dsts: &[NodeId],
    kept_dsts: &mut Vec<NodeId>,
) {
    // Figure out which destinations were dropped.
    let mut dropped: Vec<NodeId> = Vec::new();
    for &dst in before_dsts {
        if let Some(pos) = kept_dsts.iter().position(|&d| d == dst) {
            kept_dsts.swap_remove(pos);
        } else {
            dropped.push(dst);
        }
    }
    if dropped.is_empty() {
        return;
    }
    // Patch matching events from the back, as the tail scan always did.
    for ev in events.iter_mut().rev() {
        if ev.delivered {
            if let Some(pos) = dropped.iter().position(|&d| d == ev.dst) {
                ev.delivered = false;
                dropped.swap_remove(pos);
                if dropped.is_empty() {
                    return;
                }
            }
        }
    }
}

/// Marks one event `→ dst` in a sender's current-round span as undelivered
/// (dead edge, or receiver already crashed).
fn mark_undelivered_span(events: &mut [TraceEvent], dst: NodeId) {
    for ev in events.iter_mut().rev() {
        if ev.dst == dst && ev.delivered {
            ev.delivered = false;
            return;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adversary::{DeliveryFilter, FaultPlan, NoFaults, ScriptedCrash};

    fn envelopes(ports: &[PortMap], src: NodeId, msgs: &[(Port, u64)]) -> Vec<Envelope<u64>> {
        resolve_sends(ports, src, msgs.to_vec())
    }

    #[test]
    fn network_ports_agree_with_portmap() {
        let cfg = SimConfig::new(16).seed(9);
        let ports = network_ports(&cfg);
        assert_eq!(ports.len(), 16);
        let direct = PortMap::new(16, NodeId(3), topology_seed(&cfg));
        for p in 0..15 {
            assert_eq!(ports[3].peer(Port(p)), direct.peer(Port(p)));
        }
    }

    #[test]
    fn resolve_matches_receiver_side_port() {
        let cfg = SimConfig::new(8).seed(4);
        let ports = network_ports(&cfg);
        let env = envelopes(&ports, NodeId(2), &[(Port(0), 7u64), (Port(3), 8)]);
        for e in &env {
            assert_eq!(e.src, NodeId(2));
            assert_ne!(e.dst, NodeId(2));
            // The receiver, resolving the sender id through its own
            // permutation, lands on the same port the engine precomputed.
            assert_eq!(ports[e.dst.index()].port_to(e.src), e.dst_port);
        }
    }

    #[test]
    fn fault_free_round_delivers_everything() {
        let cfg = SimConfig::new(4).seed(1);
        let ports = network_ports(&cfg);
        let mut core = ControlCore::new::<u64, _>(&cfg, &mut NoFaults);
        let mut outgoing: Vec<Vec<Envelope<u64>>> = (0..4)
            .map(|u| envelopes(&ports, NodeId(u), &[(Port(0), u64::from(u))]))
            .collect();
        let v = core.finish_round(0, &mut outgoing, 0, &mut NoFaults, &ports);
        assert_eq!(v.delivered, 4);
        assert!(v.crashed.is_empty());
        assert_eq!(outgoing.iter().flatten().count(), 4);
        let out = core.finish();
        assert_eq!(out.metrics.msgs_sent, 4);
        assert_eq!(out.metrics.msgs_delivered, 4);
        assert_eq!(out.metrics.rounds, 1);
    }

    #[test]
    fn scripted_crash_drops_messages_and_marks_ledger() {
        let cfg = SimConfig::new(4).seed(1);
        let ports = network_ports(&cfg);
        let plan = FaultPlan::new().crash(NodeId(0), 0, DeliveryFilter::DropAll);
        let mut adv = ScriptedCrash::new(plan);
        let mut core = ControlCore::new::<u64, _>(&cfg, &mut adv);
        let mut outgoing: Vec<Vec<Envelope<u64>>> = (0..4)
            .map(|u| envelopes(&ports, NodeId(u), &[(Port(0), 1u64), (Port(1), 2)]))
            .collect();
        let v = core.finish_round(0, &mut outgoing, 0, &mut adv, &ports);
        assert_eq!(v.crashed, vec![NodeId(0)]);
        assert!(!core.is_alive(NodeId(0)));
        // Node 0's two sends were dropped; sends *to* node 0 die too.
        assert!(v.delivered < 8);
        assert!(outgoing[0].is_empty());
        assert!(outgoing.iter().flatten().all(|e| e.dst != NodeId(0)));
        let out = core.finish();
        assert_eq!(out.crashed_at[0], Some(0));
        assert_eq!(out.metrics.msgs_sent, 8); // paid for even if dropped
        assert_eq!(out.metrics.msgs_delivered, v.delivered);
    }

    #[test]
    fn suppressed_sends_are_accounted() {
        let cfg = SimConfig::new(4).seed(0);
        let ports = network_ports(&cfg);
        let mut core = ControlCore::new::<u64, _>(&cfg, &mut NoFaults);
        let mut outgoing: Vec<Vec<Envelope<u64>>> = vec![Vec::new(); 4];
        core.finish_round(0, &mut outgoing, 7, &mut NoFaults, &ports);
        assert_eq!(core.finish().metrics.msgs_suppressed, 7);
    }
}
