//! A naive reference implementation of the round data plane, used only by
//! tests.
//!
//! The production hot path ([`crate::round::ControlCore::finish_round`] +
//! [`crate::engine::run`]) is heavily optimised: pooled buffers, in-place
//! filtering, a flat per-sender edge accumulator, a memoised dead-edge set
//! and span-indexed trace patching. This module keeps the *obviously
//! correct* original formulation alive — per-round allocation, a `HashMap`
//! keyed by directed edge, a fresh hash roll per envelope, whole-tail trace
//! scans — and the property test at the bottom drives both engines over
//! randomized configurations, seeds, adversaries and filters, asserting
//! bit-identical `Metrics`, crash ledgers, traces and inbox orderings.
//!
//! If the two ever disagree, the optimised path broke; the naive path is
//! the spec.

use std::collections::HashMap;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::adversary::{Adversary, AdversaryView, Envelope};
use crate::engine::{RunResult, SimConfig};
use crate::ids::{NodeId, Round};
use crate::metrics::{Metrics, RoundMetrics};
use crate::node::NodeHarness;
use crate::payload::Payload;
use crate::perm::stream_seed;
use crate::protocol::{Incoming, Protocol};
use crate::round::{network_ports, resolve_sends, SALT_ADVERSARY, SALT_EDGES, SALT_FILTERS};
use crate::trace::{Trace, TraceEvent};

/// The pre-optimisation control plane, verbatim.
struct NaiveCore {
    n: u32,
    alive: Vec<bool>,
    crashed_at: Vec<Option<Round>>,
    faulty: crate::adversary::FaultySet,
    metrics: Metrics,
    trace: Option<Trace>,
    congest_bits: Option<u32>,
    congest_violations: u64,
    edge_failure_prob: f64,
    edge_seed: u64,
    adv_rng: SmallRng,
    filter_rng: SmallRng,
}

struct NaiveVerdict<M> {
    deliver: Vec<Vec<Envelope<M>>>,
    delivered: u64,
}

impl NaiveCore {
    fn new<M, A>(cfg: &SimConfig, adversary: &mut A) -> Self
    where
        M: Payload,
        A: Adversary<M> + ?Sized,
    {
        let n = cfg.n;
        let nn = n as usize;
        let mut adv_rng = SmallRng::seed_from_u64(stream_seed(cfg.seed, SALT_ADVERSARY));
        let filter_rng = SmallRng::seed_from_u64(stream_seed(cfg.seed, SALT_FILTERS));
        let faulty = adversary.faulty_set(n, &mut adv_rng);
        NaiveCore {
            n,
            alive: vec![true; nn],
            crashed_at: vec![None; nn],
            faulty,
            metrics: Metrics::new(),
            trace: cfg.record_trace.then(|| Trace::new(n)),
            congest_bits: cfg.congest_bits,
            congest_violations: 0,
            edge_failure_prob: cfg.edge_failure_prob,
            edge_seed: stream_seed(cfg.seed, SALT_EDGES),
            adv_rng,
            filter_rng,
        }
    }

    fn finish_round<M, A>(
        &mut self,
        round: Round,
        outgoing: &mut [Vec<Envelope<M>>],
        suppressed: u64,
        adversary: &mut A,
        ports: &[crate::ports::PortMap],
    ) -> NaiveVerdict<M>
    where
        M: Payload,
        A: Adversary<M> + ?Sized,
    {
        let n = self.n;
        self.metrics.msgs_suppressed += suppressed;

        let tampers = {
            let view = AdversaryView {
                round,
                n,
                faulty: &self.faulty,
                alive: &self.alive,
                outgoing,
            };
            adversary.tamper(&view, &mut self.adv_rng)
        };
        for t in tampers {
            let i = t.node.index();
            outgoing[i] = t
                .sends
                .into_iter()
                .filter_map(|(dst, msg)| {
                    // Forged sends along non-edges are dropped, exactly as
                    // in the optimised control core.
                    let dst_port = ports[dst.index()].try_port_to(t.node)?;
                    Some(Envelope {
                        src: t.node,
                        dst,
                        dst_port,
                        msg,
                    })
                })
                .collect();
        }

        let directives = {
            let view = AdversaryView {
                round,
                n,
                faulty: &self.faulty,
                alive: &self.alive,
                outgoing,
            };
            adversary.on_round(&view, &mut self.adv_rng)
        };

        let mut crashes_this_round = 0u32;
        let mut sent: u64 = 0;
        let mut bits_sent: u64 = 0;
        for node_out in outgoing.iter() {
            sent += node_out.len() as u64;
            bits_sent += node_out
                .iter()
                .map(|e| u64::from(e.msg.size_bits()))
                .sum::<u64>();
        }

        if let Some(tr) = self.trace.as_mut() {
            for e in outgoing.iter().flatten() {
                tr.push(TraceEvent {
                    round,
                    src: e.src,
                    dst: e.dst,
                    delivered: true,
                    bits: e.msg.size_bits(),
                });
            }
        }
        for d in directives {
            let i = d.node.index();
            assert!(self.faulty.contains(d.node) && self.alive[i]);
            self.alive[i] = false;
            self.crashed_at[i] = Some(round);
            self.metrics.record_crash(d.node, round);
            crashes_this_round += 1;

            if let Some(tr) = self.trace.as_mut() {
                let before: Vec<Envelope<M>> = outgoing[i].clone();
                let mut kept = before.clone();
                d.filter.apply(&mut kept, &mut self.filter_rng);
                let mut kept_dsts: Vec<NodeId> = kept.iter().map(|e| e.dst).collect();
                naive_patch_trace_round(tr, round, d.node, &before, &mut kept_dsts);
                outgoing[i] = kept;
            } else {
                d.filter.apply(&mut outgoing[i], &mut self.filter_rng);
            }
        }

        let mut delivered: u64 = 0;
        let mut edge_bits: HashMap<(u32, u32), u64> = HashMap::new();
        let edge_seed = self.edge_seed;
        let edge_failure_prob = self.edge_failure_prob;
        let edge_dead = |a: NodeId, b: NodeId| -> bool {
            if edge_failure_prob <= 0.0 {
                return false;
            }
            let key = (u64::from(a.0.min(b.0)) << 32) | u64::from(a.0.max(b.0));
            let h = stream_seed(edge_seed, key);
            (h as f64 / u64::MAX as f64) < edge_failure_prob
        };
        let mut deliver: Vec<Vec<Envelope<M>>> = Vec::with_capacity(outgoing.len());
        for node_out in outgoing.iter_mut() {
            let mut kept = Vec::new();
            for e in node_out.drain(..) {
                let bits = u64::from(e.msg.size_bits());
                *edge_bits.entry((e.src.0, e.dst.0)).or_insert(0) += bits;
                if edge_dead(e.src, e.dst) {
                    self.metrics.msgs_lost_edges += 1;
                    if let Some(tr) = self.trace.as_mut() {
                        naive_mark_undelivered(tr, round, e.src, e.dst);
                    }
                } else if self.alive[e.dst.index()] {
                    delivered += 1;
                    kept.push(e);
                } else if let Some(tr) = self.trace.as_mut() {
                    naive_mark_undelivered(tr, round, e.src, e.dst);
                }
            }
            deliver.push(kept);
        }
        let round_max_edge = edge_bits.values().copied().max().unwrap_or(0);
        self.metrics.record_edge_bits(round_max_edge);
        if let Some(budget) = self.congest_bits {
            self.congest_violations += edge_bits
                .values()
                .filter(|&&b| b > u64::from(budget))
                .count() as u64;
        }

        self.metrics.record_round(RoundMetrics {
            sent,
            delivered,
            bits_sent,
            crashes: crashes_this_round,
        });

        NaiveVerdict { deliver, delivered }
    }
}

fn naive_patch_trace_round<M>(
    tr: &mut Trace,
    round: Round,
    src: NodeId,
    before: &[Envelope<M>],
    kept_dsts: &mut Vec<NodeId>,
) {
    let mut dropped: Vec<NodeId> = Vec::new();
    for e in before {
        if let Some(pos) = kept_dsts.iter().position(|&d| d == e.dst) {
            kept_dsts.swap_remove(pos);
        } else {
            dropped.push(e.dst);
        }
    }
    if dropped.is_empty() {
        return;
    }
    for ev in tr.events_mut().iter_mut().rev() {
        if ev.round != round {
            break;
        }
        if ev.src == src && ev.delivered {
            if let Some(pos) = dropped.iter().position(|&d| d == ev.dst) {
                ev.delivered = false;
                dropped.swap_remove(pos);
                if dropped.is_empty() {
                    return;
                }
            }
        }
    }
}

fn naive_mark_undelivered(tr: &mut Trace, round: Round, src: NodeId, dst: NodeId) {
    for ev in tr.events_mut().iter_mut().rev() {
        if ev.round != round {
            break;
        }
        if ev.src == src && ev.dst == dst && ev.delivered {
            ev.delivered = false;
            return;
        }
    }
}

/// The pre-optimisation engine loop, verbatim: fresh `Vec`s every round,
/// allocating activation and resolution.
pub(crate) fn naive_run<P, F, A>(cfg: &SimConfig, mut factory: F, adversary: &mut A) -> RunResult<P>
where
    P: Protocol,
    F: FnMut(NodeId) -> P,
    A: Adversary<P::Msg> + ?Sized,
{
    let n = cfg.n;
    let nn = n as usize;

    let ports = network_ports(cfg);
    let mut nodes: Vec<NodeHarness<P>> = (0..n)
        .map(|i| NodeHarness::new(cfg, NodeId(i), factory(NodeId(i))))
        .collect();
    let mut core = NaiveCore::new(cfg, adversary);

    let mut inboxes: Vec<Vec<Incoming<P::Msg>>> = vec![Vec::new(); nn];
    let mut terminated = vec![false; nn];

    for round in 0..cfg.max_rounds {
        let mut outgoing: Vec<Vec<Envelope<P::Msg>>> = vec![Vec::new(); nn];
        let mut suppressed = 0u64;
        for u in 0..nn {
            if !core.alive[u] {
                continue;
            }
            let act = nodes[u].activate(round, &inboxes[u]);
            suppressed += act.suppressed;
            terminated[u] = act.terminated;
            outgoing[u] = resolve_sends(&ports, NodeId(u as u32), act.sends);
            inboxes[u].clear();
        }

        let verdict = core.finish_round(round, &mut outgoing, suppressed, adversary, &ports);

        for e in verdict.deliver.into_iter().flatten() {
            inboxes[e.dst.index()].push(Incoming {
                port: e.dst_port,
                msg: e.msg,
            });
        }

        if verdict.delivered == 0 {
            let all_done = (0..nn).filter(|&u| core.alive[u]).all(|u| terminated[u]);
            if all_done {
                break;
            }
        }
    }

    let states = nodes.into_iter().map(NodeHarness::into_state).collect();
    RunResult {
        metrics: core.metrics,
        states,
        crashed_at: core.crashed_at,
        faulty: core.faulty,
        trace: core.trace,
        congest_violations: core.congest_violations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adversary::{
        DeliveryFilter, EagerCrash, FaultPlan, NoFaults, RandomCrash, ScriptedCrash,
    };
    use crate::engine::run;
    use crate::ids::Port;
    use crate::protocol::Ctx;

    /// Logs every received message and generates varied traffic: random
    /// ports, duplicate-destination sends (stressing per-edge accounting)
    /// and per-node asymmetry.
    struct Probe {
        rounds: u32,
        talk: u32,
        log: Vec<(Round, u32, u64)>,
    }

    impl Protocol for Probe {
        type Msg = u64;
        fn on_start(&mut self, ctx: &mut Ctx<'_, u64>) {
            let k = ctx.node_id().0 % 3 + 1;
            for j in 0..k {
                let p = ctx.random_port();
                ctx.send(p, (u64::from(ctx.node_id().0) << 8) | u64::from(j));
            }
            if ctx.node_id().0.is_multiple_of(2) {
                // Two messages down one port: duplicate directed-edge load.
                ctx.send(Port(0), 7);
                ctx.send(Port(0), 8);
            }
        }
        fn on_round(&mut self, ctx: &mut Ctx<'_, u64>, inbox: &[Incoming<u64>]) {
            for m in inbox {
                self.log.push((ctx.round(), m.port.0, m.msg));
            }
            self.rounds += 1;
            if self.rounds < self.talk {
                for _ in 0..2 {
                    let p = ctx.random_port();
                    ctx.send(p, u64::from(ctx.round()));
                }
            }
        }
        fn is_terminated(&self) -> bool {
            self.rounds >= self.talk
        }
    }

    fn random_filter(rng: &mut SmallRng, n: u32) -> DeliveryFilter {
        match rng.random_range(0..5u32) {
            0 => DeliveryFilter::DeliverAll,
            1 => DeliveryFilter::DropAll,
            2 => DeliveryFilter::KeepFirst(rng.random_range(0..4usize)),
            3 => DeliveryFilter::DeliverEachWithProbability(rng.random_range(0.2..0.9)),
            _ => {
                let k = rng.random_range(0..3usize);
                let dsts = (0..k).map(|_| NodeId(rng.random_range(0..n))).collect();
                DeliveryFilter::KeepToDestinations(dsts)
            }
        }
    }

    /// One randomized case: build the config and a fresh adversary twice
    /// (the adversary is stateful), run both engines, compare everything.
    fn check_case(case: u64, meta: &mut SmallRng) {
        let n = meta.random_range(4..48u32);
        let seed = meta.random();
        let talk = meta.random_range(2..5u32);
        let mut cfg = SimConfig::new(n)
            .seed(seed)
            .max_rounds(meta.random_range(6..12u32));
        if meta.random_bool(0.5) {
            cfg = cfg.record_trace(true);
        }
        if meta.random_bool(0.4) {
            cfg = cfg.edge_failure_prob([0.25, 0.6][meta.random_range(0..2usize)]);
        }
        if meta.random_bool(0.4) {
            cfg = cfg.send_cap(meta.random_range(1..20u32));
        }
        if meta.random_bool(0.4) {
            cfg = cfg.congest_bits([64u32, 128][meta.random_range(0..2usize)]);
        }
        // A third of the cases leave the complete graph: the sparse agenda
        // engine and the dense oracle must also agree on hub and
        // random-regular wirings.
        match meta.random_range(0..3u32) {
            0 => {}
            1 => {
                let clusters = meta.random_range(1..=n);
                cfg = cfg.topology(crate::topology::Topology::DiameterTwo { clusters });
            }
            _ => {
                let d = 2 * meta.random_range(1..4u32);
                if d <= n - 1 {
                    cfg = cfg.topology(crate::topology::Topology::RandomRegular { d });
                }
            }
        }

        let kind = meta.random_range(0..4u32);
        let f = meta.random_range(1..(n / 2).max(2)) as usize;
        let plan = {
            let mut plan = FaultPlan::new();
            let mut nodes: Vec<u32> = (0..n).collect();
            for _ in 0..f.min(4) {
                let pick = meta.random_range(0..nodes.len());
                let node = nodes.swap_remove(pick);
                let round = meta.random_range(0..4u32);
                let filter = random_filter(meta, n);
                plan = plan.crash(NodeId(node), round, filter);
            }
            plan
        };
        let mk = move |k: u32| -> Box<dyn Adversary<u64>> {
            match k {
                0 => Box::new(NoFaults),
                1 => Box::new(EagerCrash::new(f)),
                2 => Box::new(RandomCrash::new(f, 5)),
                _ => Box::new(ScriptedCrash::new(plan.clone())),
            }
        };

        let factory = |_: NodeId| Probe {
            rounds: 0,
            talk,
            log: Vec::new(),
        };

        let mut adv_fast = mk(kind);
        let fast = run(&cfg, factory, adv_fast.as_mut());
        let mut adv_naive = mk(kind);
        let naive = naive_run(&cfg, factory, adv_naive.as_mut());

        let ctx = format!("case {case}: n={n} seed={seed} kind={kind} cfg={cfg:?}");
        assert_eq!(fast.metrics, naive.metrics, "{ctx}: metrics diverged");
        assert_eq!(
            fast.crashed_at, naive.crashed_at,
            "{ctx}: crash ledger diverged"
        );
        assert_eq!(
            fast.congest_violations, naive.congest_violations,
            "{ctx}: congest accounting diverged"
        );
        let ff: Vec<NodeId> = fast.faulty.iter().collect();
        let nf: Vec<NodeId> = naive.faulty.iter().collect();
        assert_eq!(ff, nf, "{ctx}: faulty set diverged");
        for u in 0..n as usize {
            assert_eq!(
                fast.states[u].log, naive.states[u].log,
                "{ctx}: node {u} inbox ordering diverged"
            );
        }
        match (&fast.trace, &naive.trace) {
            (None, None) => {}
            (Some(a), Some(b)) => {
                assert_eq!(a.events(), b.events(), "{ctx}: trace diverged");
            }
            _ => panic!("{ctx}: trace presence diverged"),
        }
    }

    #[test]
    fn pooled_engine_matches_naive_reference() {
        let mut meta = SmallRng::seed_from_u64(0x5EED_CAFE);
        for case in 0..40 {
            check_case(case, &mut meta);
        }
    }

    /// A protocol that honestly opts into [`Protocol::is_inert`]: after
    /// `on_start` it only ever reacts to incoming messages (bouncing them
    /// back with a decremented hop count), so an empty-inbox activation is
    /// a true no-op. The sparse engine drops such nodes from its agenda;
    /// the naive oracle activates every alive node every round regardless.
    struct Bouncer {
        fuel: u32,
        started: bool,
        heard: Vec<(Round, u32, u64)>,
    }

    impl Protocol for Bouncer {
        type Msg = u64;
        fn on_start(&mut self, ctx: &mut Ctx<'_, u64>) {
            for _ in 0..ctx.node_id().0 % 3 {
                let p = ctx.random_port();
                ctx.send(p, 5); // 5 hops of life
            }
            self.started = true;
        }
        fn on_round(&mut self, ctx: &mut Ctx<'_, u64>, inbox: &[Incoming<u64>]) {
            for m in inbox {
                self.heard.push((ctx.round(), m.port.0, m.msg));
                if m.msg > 0 && self.fuel > 0 {
                    self.fuel -= 1;
                    ctx.send(m.port, m.msg - 1);
                }
            }
        }
        fn is_terminated(&self) -> bool {
            self.started
        }
        fn is_inert(&self) -> bool {
            self.started
        }
    }

    /// The sparse agenda engine must match the dense oracle even when the
    /// protocol's `is_inert` hint lets whole swaths of nodes be skipped —
    /// the skips must be observationally invisible, message for message.
    #[test]
    fn inert_skips_match_naive_reference() {
        let mut meta = SmallRng::seed_from_u64(0xB0C1_4E57);
        for case in 0..25u64 {
            let n = meta.random_range(4..64u32);
            let seed = meta.random();
            let mut cfg = SimConfig::new(n).seed(seed).max_rounds(12);
            if meta.random_bool(0.5) {
                cfg = cfg.record_trace(true);
            }
            if meta.random_bool(0.4) {
                cfg = cfg.edge_failure_prob(0.3);
            }
            let f = meta.random_range(1..(n / 2).max(2)) as usize;
            let kind = meta.random_range(0..3u32);
            let mk = move |k: u32| -> Box<dyn Adversary<u64>> {
                match k {
                    0 => Box::new(NoFaults),
                    1 => Box::new(EagerCrash::new(f)),
                    _ => Box::new(RandomCrash::new(f, 5)),
                }
            };
            let factory = |_: NodeId| Bouncer {
                fuel: 3,
                started: false,
                heard: Vec::new(),
            };

            let mut adv_fast = mk(kind);
            let fast = run(&cfg, factory, adv_fast.as_mut());
            let mut adv_naive = mk(kind);
            let naive = naive_run(&cfg, factory, adv_naive.as_mut());

            let ctx = format!("case {case}: n={n} seed={seed} kind={kind}");
            assert_eq!(fast.metrics, naive.metrics, "{ctx}: metrics diverged");
            assert_eq!(
                fast.crashed_at, naive.crashed_at,
                "{ctx}: crash ledger diverged"
            );
            for u in 0..n as usize {
                assert_eq!(
                    fast.states[u].heard, naive.states[u].heard,
                    "{ctx}: node {u} inbox diverged"
                );
            }
            match (&fast.trace, &naive.trace) {
                (None, None) => {}
                (Some(a), Some(b)) => assert_eq!(a.events(), b.events(), "{ctx}: trace diverged"),
                _ => panic!("{ctx}: trace presence diverged"),
            }
        }
    }
}
