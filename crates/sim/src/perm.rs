//! Format-preserving pseudorandom permutations over arbitrary domains.
//!
//! The KT0 model wires every node's `n-1` ports to its neighbours by a
//! uniformly random permutation. Materialising those permutations costs
//! `O(n)` memory **per node** — `O(n²)` total — which caps experiments at a
//! few thousand nodes. Instead we evaluate the permutation lazily with a
//! keyed [Feistel network] over the smallest power-of-two square that covers
//! the domain, using *cycle walking* to restrict it to `[0, domain)`.
//! Both directions (`apply`, `invert`) run in expected `O(1)`.
//!
//! This is a simulation-quality PRP (statistically well-mixed, deterministic
//! per seed), **not** a cryptographic one.
//!
//! [Feistel network]: https://en.wikipedia.org/wiki/Feistel_cipher

/// Number of Feistel rounds. Four rounds of a strong round function are the
/// classical Luby–Rackoff threshold; we use six for extra mixing margin.
const ROUNDS: usize = 6;

/// A keyed pseudorandom permutation of `0..domain`.
///
/// ```
/// use ftc_sim::perm::Perm;
///
/// let p = Perm::new(1000, 0xfeed);
/// let mut seen = vec![false; 1000];
/// for x in 0..1000 {
///     let y = p.apply(x);
///     assert!(y < 1000 && !seen[y as usize]);
///     seen[y as usize] = true;
///     assert_eq!(p.invert(y), x);
/// }
/// ```
#[derive(Clone, Debug)]
pub struct Perm {
    domain: u64,
    /// Bits in each Feistel half; the cipher permutes `0..2^(2*half_bits)`.
    half_bits: u32,
    keys: [u64; ROUNDS],
}

impl Perm {
    /// Creates the permutation of `0..domain` determined by `seed`.
    ///
    /// # Panics
    ///
    /// Panics if `domain == 0`.
    pub fn new(domain: u64, seed: u64) -> Self {
        assert!(domain > 0, "permutation domain must be non-empty");
        // Smallest `2h` such that `4^h >= domain`; minimum one bit per half so
        // the Feistel structure is well-formed even for tiny domains.
        let mut half_bits = 1;
        while (1u128 << (2 * half_bits)) < domain as u128 {
            half_bits += 1;
        }
        let mut keys = [0u64; ROUNDS];
        let mut s = seed;
        for k in keys.iter_mut() {
            s = splitmix64(s);
            *k = s;
        }
        Perm {
            domain,
            half_bits,
            keys,
        }
    }

    /// The size of the permuted domain.
    pub fn domain(&self) -> u64 {
        self.domain
    }

    /// Maps `x` to its image under the permutation.
    ///
    /// # Panics
    ///
    /// Panics if `x >= domain`.
    pub fn apply(&self, x: u64) -> u64 {
        assert!(x < self.domain, "input {x} outside domain {}", self.domain);
        // Cycle-walk: repeatedly encipher until we land back inside the
        // domain. The expected number of steps is < 4 because the cipher's
        // carrier set is at most 4x the domain.
        let mut y = self.encipher(x);
        while y >= self.domain {
            y = self.encipher(y);
        }
        y
    }

    /// Maps `y` back to its preimage under the permutation.
    ///
    /// # Panics
    ///
    /// Panics if `y >= domain`.
    pub fn invert(&self, y: u64) -> u64 {
        assert!(y < self.domain, "input {y} outside domain {}", self.domain);
        let mut x = self.decipher(y);
        while x >= self.domain {
            x = self.decipher(x);
        }
        x
    }

    fn encipher(&self, x: u64) -> u64 {
        let mask = (1u64 << self.half_bits) - 1;
        let mut left = x >> self.half_bits;
        let mut right = x & mask;
        for key in &self.keys {
            let next_left = right;
            right = left ^ (round_fn(right, *key) & mask);
            left = next_left;
        }
        (left << self.half_bits) | right
    }

    fn decipher(&self, y: u64) -> u64 {
        let mask = (1u64 << self.half_bits) - 1;
        let mut left = y >> self.half_bits;
        let mut right = y & mask;
        for key in self.keys.iter().rev() {
            let next_right = left;
            left = right ^ (round_fn(left, *key) & mask);
            right = next_right;
        }
        (left << self.half_bits) | right
    }
}

/// SplitMix64 step — fast, well-distributed 64-bit mixer used both for key
/// scheduling and as the Feistel round function core.
#[inline]
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[inline]
fn round_fn(half: u64, key: u64) -> u64 {
    splitmix64(half ^ key)
}

/// Derives an independent 64-bit stream seed from a base seed and a salt.
///
/// Used across the simulator to give every (trial, node, subsystem) its own
/// deterministic RNG stream: `stream_seed(stream_seed(base, trial), node)`.
#[inline]
pub fn stream_seed(base: u64, salt: u64) -> u64 {
    splitmix64(base ^ salt.wrapping_mul(0xA24B_AED4_963E_E407))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_is_permutation(domain: u64, seed: u64) {
        let p = Perm::new(domain, seed);
        let mut seen = vec![false; domain as usize];
        for x in 0..domain {
            let y = p.apply(x);
            assert!(y < domain, "image out of domain");
            assert!(!seen[y as usize], "collision at {y}");
            seen[y as usize] = true;
            assert_eq!(p.invert(y), x, "inverse mismatch");
        }
    }

    #[test]
    fn bijective_on_assorted_domains() {
        for &d in &[1u64, 2, 3, 5, 7, 16, 63, 64, 65, 1000, 4096, 10_007] {
            assert_is_permutation(d, 0xDEAD_BEEF ^ d);
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = Perm::new(512, 1);
        let b = Perm::new(512, 2);
        let same = (0..512).filter(|&x| a.apply(x) == b.apply(x)).count();
        // Two independent random permutations of 512 agree in ~1 position in
        // expectation; 30 would be astronomically unlikely.
        assert!(
            same < 30,
            "permutations too similar: {same} fixed agreements"
        );
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let a = Perm::new(777, 42);
        let b = Perm::new(777, 42);
        for x in 0..777 {
            assert_eq!(a.apply(x), b.apply(x));
        }
    }

    #[test]
    fn mixes_small_inputs_apart() {
        // Consecutive inputs should not map to consecutive outputs (no
        // affine structure leaking through).
        let p = Perm::new(1 << 16, 99);
        let mut adjacent = 0;
        for x in 0..1000u64 {
            let d = p.apply(x).abs_diff(p.apply(x + 1));
            if d == 1 {
                adjacent += 1;
            }
        }
        assert!(adjacent < 5, "too much local structure: {adjacent}");
    }

    #[test]
    fn stream_seed_separates_salts() {
        let s1 = stream_seed(42, 0);
        let s2 = stream_seed(42, 1);
        assert_ne!(s1, s2);
        assert_ne!(stream_seed(41, 0), s1);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn zero_domain_panics() {
        let _ = Perm::new(0, 0);
    }

    #[test]
    #[should_panic(expected = "outside domain")]
    fn out_of_domain_apply_panics() {
        Perm::new(10, 0).apply(10);
    }

    /// A crude uniformity check: each output bucket of a 4-way split should
    /// receive roughly a quarter of the inputs.
    #[test]
    fn output_buckets_are_balanced() {
        let d = 40_000u64;
        let p = Perm::new(d, 1234);
        let mut buckets = [0u64; 4];
        for x in 0..d {
            buckets[(p.apply(x) * 4 / d) as usize] += 1;
        }
        for &b in &buckets {
            assert!(
                (b as i64 - (d / 4) as i64).abs() <= 2, // exact partition, ±rounding
                "bucket sizes {buckets:?}"
            );
        }
    }
}
