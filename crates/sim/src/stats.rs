//! Small statistics toolkit for experiment aggregation.
//!
//! Experiments aggregate per-trial measurements (message counts, rounds,
//! success indicators) into summaries and fit power laws to verify the
//! paper's asymptotic claims (e.g. "messages grow like `√n`" means a
//! fitted log–log slope near `0.5`).

/// Five-number-style summary of a sample.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Summary {
    /// Number of observations.
    pub count: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample standard deviation (Bessel-corrected; `0` for `count < 2`).
    pub std_dev: f64,
    /// Minimum.
    pub min: f64,
    /// Maximum.
    pub max: f64,
    /// Median (50th percentile, linear interpolation).
    pub median: f64,
    /// 95th percentile.
    pub p95: f64,
    /// 99th percentile.
    pub p99: f64,
    /// 99.9th percentile.
    pub p999: f64,
}

impl Summary {
    /// Summarises a sample.
    ///
    /// # Panics
    ///
    /// Panics on an empty sample.
    pub fn of(values: &[f64]) -> Self {
        assert!(!values.is_empty(), "cannot summarise an empty sample");
        let count = values.len();
        let mean = values.iter().sum::<f64>() / count as f64;
        let var = if count >= 2 {
            values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / (count - 1) as f64
        } else {
            0.0
        };
        let mut sorted = values.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in sample"));
        Summary {
            count,
            mean,
            std_dev: var.sqrt(),
            min: sorted[0],
            max: sorted[count - 1],
            median: percentile_sorted(&sorted, 50.0),
            p95: percentile_sorted(&sorted, 95.0),
            p99: percentile_sorted(&sorted, 99.0),
            p999: percentile_sorted(&sorted, 99.9),
        }
    }

    /// Non-panicking variant of [`Summary::of`]: `None` for an empty
    /// sample **or one containing a NaN**. Front ends that accept a
    /// user-supplied trial count should use this (an empty batch is a
    /// config error, not a crash site), and aggregation pipelines should
    /// use it so that one NaN metric from a timeout-flagged trial is
    /// rejected at ingestion — with [`Summary::nan_index`] naming the
    /// offending trial — instead of panicking mid-batch deep inside the
    /// percentile sort.
    pub fn try_of(values: &[f64]) -> Option<Self> {
        if values.is_empty() || Self::nan_index(values).is_some() {
            None
        } else {
            Some(Summary::of(values))
        }
    }

    /// Index of the first NaN in `values`, if any — the diagnostic
    /// companion to [`Summary::try_of`]: callers aggregating per-trial
    /// metrics map the index back to a trial number and seed.
    pub fn nan_index(values: &[f64]) -> Option<usize> {
        values.iter().position(|v| v.is_nan())
    }

    /// Summarises any iterator of numbers convertible to `f64`.
    pub fn of_iter<I, V>(values: I) -> Self
    where
        I: IntoIterator<Item = V>,
        V: Into<f64>,
    {
        let v: Vec<f64> = values.into_iter().map(Into::into).collect();
        Summary::of(&v)
    }

    /// Non-panicking variant of [`Summary::of_iter`].
    pub fn try_of_iter<I, V>(values: I) -> Option<Self>
    where
        I: IntoIterator<Item = V>,
        V: Into<f64>,
    {
        let v: Vec<f64> = values.into_iter().map(Into::into).collect();
        Summary::try_of(&v)
    }
}

/// Percentile (0–100) of a **sorted** sample with linear interpolation.
fn percentile_sorted(sorted: &[f64], p: f64) -> f64 {
    let n = sorted.len();
    if n == 1 {
        return sorted[0];
    }
    let rank = p / 100.0 * (n - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    let frac = rank - lo as f64;
    sorted[lo] * (1.0 - frac) + sorted[hi] * frac
}

/// Percentile (0–100) of an unsorted sample.
///
/// # Panics
///
/// Panics on an empty sample or a `p` outside `[0, 100]`.
pub fn percentile(values: &[f64], p: f64) -> f64 {
    assert!(!values.is_empty(), "cannot take percentile of empty sample");
    assert!((0.0..=100.0).contains(&p), "percentile must be in [0,100]");
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in sample"));
    percentile_sorted(&sorted, p)
}

/// Least-squares fit of `y = c · x^e` on log–log scale; returns `(e, c)`.
///
/// Used to check asymptotic claims: fitting measured message counts against
/// `n` should give `e ≈ 0.5` for the paper's protocols and `e ≈ 2` for
/// quadratic baselines.
///
/// # Panics
///
/// Panics if fewer than two points are given, any coordinate is `≤ 0`, or
/// all `x` values are equal (the slope would be undefined).
pub fn fit_power_law(xs: &[f64], ys: &[f64]) -> (f64, f64) {
    assert_eq!(xs.len(), ys.len(), "mismatched sample lengths");
    assert!(xs.len() >= 2, "need at least two points to fit");
    assert!(
        xs.iter().chain(ys.iter()).all(|&v| v > 0.0),
        "power-law fit requires positive coordinates"
    );
    let lx: Vec<f64> = xs.iter().map(|v| v.ln()).collect();
    let ly: Vec<f64> = ys.iter().map(|v| v.ln()).collect();
    let n = lx.len() as f64;
    let mx = lx.iter().sum::<f64>() / n;
    let my = ly.iter().sum::<f64>() / n;
    let sxy: f64 = lx.iter().zip(&ly).map(|(x, y)| (x - mx) * (y - my)).sum();
    let sxx: f64 = lx.iter().map(|x| (x - mx).powi(2)).sum();
    assert!(sxx > 0.0, "need at least two distinct x values to fit");
    let slope = sxy / sxx;
    let intercept = my - slope * mx;
    (slope, intercept.exp())
}

/// Wilson score interval for a binomial proportion at ~95% confidence.
///
/// Returns `(low, high)`. Robust for success counts near 0 or `trials`,
/// which is exactly where "succeeds with high probability" claims live.
pub fn wilson_interval(successes: u64, trials: u64) -> (f64, f64) {
    assert!(trials > 0, "need at least one trial");
    assert!(successes <= trials, "more successes than trials");
    let z = 1.96f64;
    let n = trials as f64;
    let p = successes as f64 / n;
    let z2 = z * z;
    let denom = 1.0 + z2 / n;
    let centre = p + z2 / (2.0 * n);
    let margin = z * (p * (1.0 - p) / n + z2 / (4.0 * n * n)).sqrt();
    (
        ((centre - margin) / denom).max(0.0),
        ((centre + margin) / denom).min(1.0),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_of_known_sample() {
        let s = Summary::of(&[1.0, 2.0, 3.0, 4.0, 5.0]);
        assert_eq!(s.count, 5);
        assert!((s.mean - 3.0).abs() < 1e-12);
        assert!((s.std_dev - (2.5f64).sqrt()).abs() < 1e-12);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 5.0);
        assert_eq!(s.median, 3.0);
    }

    #[test]
    fn summary_of_singleton() {
        let s = Summary::of(&[7.0]);
        assert_eq!(s.mean, 7.0);
        assert_eq!(s.std_dev, 0.0);
        assert_eq!(s.median, 7.0);
        assert_eq!(s.p95, 7.0);
        assert_eq!(s.p99, 7.0);
        assert_eq!(s.p999, 7.0);
    }

    #[test]
    fn percentile_interpolates() {
        let v = [0.0, 10.0];
        assert_eq!(percentile(&v, 0.0), 0.0);
        assert_eq!(percentile(&v, 50.0), 5.0);
        assert_eq!(percentile(&v, 100.0), 10.0);
    }

    #[test]
    fn power_law_recovers_exact_exponent() {
        let xs: [f64; 5] = [1.0, 2.0, 4.0, 8.0, 16.0];
        let ys: Vec<f64> = xs.iter().map(|x| 3.0 * x.powf(0.5)).collect();
        let (e, c) = fit_power_law(&xs, &ys);
        assert!((e - 0.5).abs() < 1e-9, "exponent {e}");
        assert!((c - 3.0).abs() < 1e-9, "coefficient {c}");
    }

    #[test]
    fn power_law_on_noisy_quadratic() {
        let xs: Vec<f64> = (1..=10).map(|i| i as f64 * 100.0).collect();
        let ys: Vec<f64> = xs
            .iter()
            .enumerate()
            .map(|(i, x)| x * x * (1.0 + 0.01 * (i as f64 % 3.0)))
            .collect();
        let (e, _) = fit_power_law(&xs, &ys);
        assert!((e - 2.0).abs() < 0.05, "exponent {e}");
    }

    #[test]
    fn wilson_interval_contains_point_estimate() {
        let (lo, hi) = wilson_interval(90, 100);
        assert!(lo < 0.9 && 0.9 < hi);
        assert!(lo > 0.8 && hi < 0.97);
        let (lo0, _) = wilson_interval(0, 50);
        assert_eq!(lo0, 0.0);
        let (_, hi1) = wilson_interval(50, 50);
        assert_eq!(hi1, 1.0);
    }

    #[test]
    #[should_panic(expected = "empty sample")]
    fn empty_summary_panics() {
        let _ = Summary::of(&[]);
    }

    #[test]
    fn try_of_is_total() {
        assert_eq!(Summary::try_of(&[]), None);
        assert_eq!(Summary::try_of_iter(std::iter::empty::<f64>()), None);
        let s = Summary::try_of(&[2.0, 4.0]).unwrap();
        assert_eq!(s.mean, 3.0);
        assert_eq!(Summary::try_of_iter([2.0f64, 4.0]).unwrap().mean, 3.0);
    }

    /// Regression: a NaN metric (e.g. from a timeout-flagged trial) used
    /// to panic inside the percentile sort (`expect("NaN in sample")`),
    /// taking the whole aggregation batch down. `try_of` now rejects it
    /// at ingestion and `nan_index` names the offending position.
    #[test]
    fn try_of_rejects_nan_instead_of_panicking() {
        let poisoned = [3.0, f64::NAN, 5.0];
        assert_eq!(Summary::try_of(&poisoned), None);
        assert_eq!(Summary::nan_index(&poisoned), Some(1));
        assert_eq!(Summary::nan_index(&[3.0, 5.0]), None);
        assert_eq!(Summary::try_of(&[f64::NAN]), None);
    }

    #[test]
    #[should_panic(expected = "must be in [0,100]")]
    fn out_of_range_percentile_panics() {
        let _ = percentile(&[1.0], 101.0);
    }

    #[test]
    #[should_panic(expected = "positive coordinates")]
    fn power_law_rejects_non_positive_points() {
        let _ = fit_power_law(&[1.0, 2.0], &[0.0, 3.0]);
    }

    #[test]
    #[should_panic(expected = "at least two points")]
    fn power_law_rejects_single_point() {
        let _ = fit_power_law(&[4.0], &[9.0]);
    }

    #[test]
    #[should_panic(expected = "mismatched sample lengths")]
    fn power_law_rejects_mismatched_lengths() {
        let _ = fit_power_law(&[1.0, 2.0, 3.0], &[1.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "two distinct x values")]
    fn power_law_rejects_degenerate_axis() {
        // All-equal x coordinates leave the log–log slope undefined; a
        // loud panic beats the silent NaN this used to produce.
        let _ = fit_power_law(&[8.0, 8.0, 8.0], &[1.0, 2.0, 3.0]);
    }

    #[test]
    fn power_law_flat_line_fits_zero_exponent() {
        let (e, c) = fit_power_law(&[1.0, 4.0, 16.0], &[5.0, 5.0, 5.0]);
        assert!(e.abs() < 1e-12, "exponent {e}");
        assert!((c - 5.0).abs() < 1e-9, "coefficient {c}");
    }

    #[test]
    fn summary_of_all_equal_samples_is_degenerate_point() {
        let s = Summary::of(&[4.0; 9]);
        assert_eq!(s.count, 9);
        assert_eq!(s.mean, 4.0);
        assert_eq!(s.std_dev, 0.0);
        assert_eq!((s.min, s.max), (4.0, 4.0));
        assert_eq!((s.median, s.p95), (4.0, 4.0));
        assert_eq!((s.p99, s.p999), (4.0, 4.0));
    }

    #[test]
    fn tail_percentiles_are_ordered_and_interpolate() {
        // 0..=999: p99 sits between the 989th and 990th order statistic,
        // p999 within the last step — both strictly above p95.
        let v: Vec<f64> = (0..1000).map(f64::from).collect();
        let s = Summary::of(&v);
        assert!((s.p95 - 949.05).abs() < 1e-9, "p95 {}", s.p95);
        assert!((s.p99 - 989.01).abs() < 1e-9, "p99 {}", s.p99);
        assert!((s.p999 - 998.001).abs() < 1e-9, "p999 {}", s.p999);
        assert!(s.p95 < s.p99 && s.p99 < s.p999 && s.p999 <= s.max);
    }

    #[test]
    #[should_panic(expected = "at least one trial")]
    fn wilson_interval_rejects_zero_trials() {
        let _ = wilson_interval(0, 0);
    }

    #[test]
    #[should_panic(expected = "more successes than trials")]
    fn wilson_interval_rejects_excess_successes() {
        let _ = wilson_interval(5, 4);
    }

    #[test]
    fn wilson_interval_extremes_stay_informative() {
        // Zero successes: the lower bound clamps to 0 but the upper bound
        // must stay strictly positive (that's the whole point of Wilson
        // over the normal approximation near the boundary).
        let (lo, hi) = wilson_interval(0, 20);
        assert_eq!(lo, 0.0);
        assert!(hi > 0.0 && hi < 0.3, "upper {hi}");
        // All successes, mirrored (upper bound reaches 1 up to rounding).
        let (lo, hi) = wilson_interval(20, 20);
        assert!(hi > 1.0 - 1e-12 && hi <= 1.0, "upper {hi}");
        assert!(lo > 0.7 && lo < 1.0, "lower {lo}");
        // A single trial still yields a sane, wide interval.
        let (lo, hi) = wilson_interval(1, 1);
        assert!(hi > 1.0 - 1e-12 && hi <= 1.0, "upper {hi}");
        assert!(lo > 0.0 && lo < 0.5, "lower {lo}");
    }

    #[test]
    fn wilson_interval_tightens_with_sample_size() {
        let (lo_small, hi_small) = wilson_interval(8, 10);
        let (lo_big, hi_big) = wilson_interval(800, 1000);
        assert!(hi_big - lo_big < hi_small - lo_small);
        assert!(lo_big < 0.8 && 0.8 < hi_big);
    }
}
