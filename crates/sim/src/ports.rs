//! KT0 port wiring for a complete network.
//!
//! Every node `u` of a complete `n`-node network has `n-1` ports. The KT0
//! model (Section II of the paper) stipulates that the assignment of
//! neighbours to ports is a uniformly random permutation unknown to the
//! node. [`PortMap`] realises one such permutation per node, backed by the
//! lazy [`crate::perm::Perm`] so that the whole wiring costs `O(1)` memory
//! per node regardless of `n`.

use crate::ids::{NodeId, Port};
use crate::perm::{stream_seed, Perm};

/// The port permutation of a single node.
///
/// Maps local ports `0..n-1` to the node's `n-1` neighbours and back.
///
/// ```
/// use ftc_sim::ports::PortMap;
/// use ftc_sim::ids::{NodeId, Port};
///
/// let pm = PortMap::new(8, NodeId(3), 42);
/// let peer = pm.peer(Port(0));
/// assert_ne!(peer, NodeId(3));          // never wired to itself
/// assert_eq!(pm.port_to(peer), Port(0)); // inverse is consistent
/// ```
#[derive(Clone, Debug)]
pub struct PortMap {
    node: NodeId,
    n: u32,
    perm: Perm,
}

impl PortMap {
    /// Builds node `node`'s port permutation in an `n`-node network.
    ///
    /// `topology_seed` determines the wiring of the *whole* network; each
    /// node derives an independent permutation from it, which matches the
    /// paper's lower-bound setup where "for every node, the edges are
    /// randomly connected to the ports" independently.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2` or `node.0 >= n`.
    pub fn new(n: u32, node: NodeId, topology_seed: u64) -> Self {
        assert!(n >= 2, "a complete network needs at least two nodes");
        assert!(node.0 < n, "node {node} outside network of size {n}");
        let perm = Perm::new(
            u64::from(n) - 1,
            stream_seed(topology_seed, 0x5057_0000 ^ u64::from(node.0)),
        );
        PortMap { node, n, perm }
    }

    /// Number of ports (`n-1`).
    pub fn port_count(&self) -> u32 {
        self.n - 1
    }

    /// The neighbour reached through `port`.
    ///
    /// # Panics
    ///
    /// Panics if `port` is out of range.
    pub fn peer(&self, port: Port) -> NodeId {
        assert!(port.0 < self.n - 1, "port {port} out of range");
        let k = self.perm.apply(u64::from(port.0)) as u32;
        // Skip-self encoding: neighbour indices `0..n-1` exclude `self.node`.
        NodeId(if k < self.node.0 { k } else { k + 1 })
    }

    /// The local port through which neighbour `peer` is reached.
    ///
    /// # Panics
    ///
    /// Panics if `peer` is this node itself or out of range.
    pub fn port_to(&self, peer: NodeId) -> Port {
        assert!(peer.0 < self.n, "peer {peer} outside network");
        assert_ne!(peer, self.node, "a node has no port to itself");
        let k = if peer.0 < self.node.0 {
            peer.0
        } else {
            peer.0 - 1
        };
        Port(self.perm.invert(u64::from(k)) as u32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn covers_all_neighbours_exactly_once() {
        let n = 97;
        for node in [0u32, 1, 48, 96] {
            let pm = PortMap::new(n, NodeId(node), 7);
            let mut seen = vec![false; n as usize];
            for p in 0..n - 1 {
                let peer = pm.peer(Port(p));
                assert_ne!(peer.0, node);
                assert!(!seen[peer.index()], "duplicate peer {peer}");
                seen[peer.index()] = true;
                assert_eq!(pm.port_to(peer), Port(p));
            }
            assert!(!seen[node as usize]);
            assert_eq!(seen.iter().filter(|&&s| s).count(), (n - 1) as usize);
        }
    }

    #[test]
    fn wiring_differs_across_nodes_and_seeds() {
        let a = PortMap::new(64, NodeId(0), 1);
        let b = PortMap::new(64, NodeId(1), 1);
        let c = PortMap::new(64, NodeId(0), 2);
        let same_ab = (0..63)
            .filter(|&p| a.peer(Port(p)) == b.peer(Port(p)))
            .count();
        let same_ac = (0..63)
            .filter(|&p| a.peer(Port(p)) == c.peer(Port(p)))
            .count();
        assert!(same_ab < 15);
        assert!(same_ac < 15);
    }

    #[test]
    fn two_node_network() {
        let pm0 = PortMap::new(2, NodeId(0), 0);
        let pm1 = PortMap::new(2, NodeId(1), 0);
        assert_eq!(pm0.peer(Port(0)), NodeId(1));
        assert_eq!(pm1.peer(Port(0)), NodeId(0));
    }

    #[test]
    #[should_panic(expected = "no port to itself")]
    fn port_to_self_panics() {
        PortMap::new(4, NodeId(2), 0).port_to(NodeId(2));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn oversized_port_panics() {
        PortMap::new(4, NodeId(0), 0).peer(Port(3));
    }
}
