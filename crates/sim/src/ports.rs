//! KT0 port wiring over the configured topology.
//!
//! Every node `u` has one local port per *neighbour* — `n-1` of them on
//! the complete graph, `deg(u)` in general. The KT0 model (Section II of
//! the paper) stipulates that the assignment of neighbours to ports is a
//! uniformly random permutation unknown to the node. [`PortMap`] realises
//! one such permutation per node, backed by the lazy [`crate::perm::Perm`]
//! so that closed-form topologies (complete, hub) cost `O(1)` memory per
//! node regardless of `n`; list topologies share one `Arc` per neighbour
//! list.
//!
//! On [`crate::topology::Topology::Complete`] the permutation seed, the
//! skip-self encoding, and every `peer`/`port_to` result are bit-identical
//! to the pre-topology engine — that invariant is what keeps all committed
//! Complete-graph record ids stable.

use std::sync::Arc;

use crate::ids::{NodeId, Port};
use crate::perm::{stream_seed, Perm};

/// How one node's ports attach to the graph: the shape its permutation
/// ranges over.
#[derive(Clone, Debug)]
pub(crate) enum Wiring {
    /// Adjacent to all `n-1` other nodes (complete graph, or a hub of the
    /// diameter-two topology). Peers use the skip-self encoding.
    Complete,
    /// A non-hub of the diameter-two topology: adjacent to exactly the
    /// hub nodes `0..clusters` (the node itself is `>= clusters`).
    Hub { clusters: u32 },
    /// An explicit sorted neighbour list (random-regular or explicit
    /// adjacency).
    List(Arc<[u32]>),
}

/// The port permutation of a single node.
///
/// Maps local ports `0..degree` to the node's neighbours and back.
///
/// ```
/// use ftc_sim::ports::PortMap;
/// use ftc_sim::ids::{NodeId, Port};
///
/// let pm = PortMap::new(8, NodeId(3), 42);
/// let peer = pm.peer(Port(0));
/// assert_ne!(peer, NodeId(3));          // never wired to itself
/// assert_eq!(pm.port_to(peer), Port(0)); // inverse is consistent
/// ```
#[derive(Clone, Debug)]
pub struct PortMap {
    node: NodeId,
    n: u32,
    degree: u32,
    seed: u64,
    perm: Perm,
    wiring: Wiring,
}

impl PortMap {
    /// Builds node `node`'s port permutation in a *complete* `n`-node
    /// network. Topology-aware callers go through
    /// [`crate::round::network_ports`], which hands each node its wiring.
    ///
    /// `topology_seed` determines the wiring of the *whole* network; each
    /// node derives an independent permutation from it, which matches the
    /// paper's lower-bound setup where "for every node, the edges are
    /// randomly connected to the ports" independently.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2` or `node.0 >= n`.
    pub fn new(n: u32, node: NodeId, topology_seed: u64) -> Self {
        Self::with_wiring(n, node, topology_seed, Wiring::Complete)
    }

    /// Builds the port permutation of `node` over an explicit wiring.
    ///
    /// # Panics
    ///
    /// Panics — deterministically, with the node and topology seed in the
    /// message so a hunt that trips it replays — if the wiring is
    /// degenerate (`n < 2`, node out of range, or zero degree).
    pub(crate) fn with_wiring(n: u32, node: NodeId, topology_seed: u64, wiring: Wiring) -> Self {
        assert!(n >= 2, "a complete network needs at least two nodes");
        assert!(node.0 < n, "node {node} outside network of size {n}");
        let degree = match &wiring {
            Wiring::Complete => n - 1,
            Wiring::Hub { clusters } => *clusters,
            Wiring::List(list) => list.len() as u32,
        };
        assert!(
            degree >= 1,
            "node {node} has no neighbours (n={n}, topology seed {topology_seed:#018x})"
        );
        let perm = Perm::new(
            u64::from(degree),
            stream_seed(topology_seed, 0x5057_0000 ^ u64::from(node.0)),
        );
        PortMap {
            node,
            n,
            degree,
            seed: topology_seed,
            perm,
            wiring,
        }
    }

    /// Number of ports — the node's degree (`n-1` on the complete graph).
    pub fn port_count(&self) -> u32 {
        self.degree
    }

    /// The neighbour reached through `port`.
    ///
    /// # Panics
    ///
    /// Panics if `port` is out of range; the message carries the node,
    /// degree, and topology seed so the failure replays deterministically.
    pub fn peer(&self, port: Port) -> NodeId {
        assert!(
            port.0 < self.degree,
            "port {port} out of range at node {node} (degree {degree}, topology seed {seed:#018x})",
            node = self.node,
            degree = self.degree,
            seed = self.seed,
        );
        let k = self.perm.apply(u64::from(port.0)) as u32;
        match &self.wiring {
            // Skip-self encoding: neighbour indices `0..n-1` exclude
            // `self.node`.
            Wiring::Complete => NodeId(if k < self.node.0 { k } else { k + 1 }),
            // Non-hub neighbours are exactly the hubs `0..clusters`, and
            // the node itself is outside that range — no skip needed.
            Wiring::Hub { .. } => NodeId(k),
            Wiring::List(list) => NodeId(list[k as usize]),
        }
    }

    /// The local port through which neighbour `peer` is reached, or
    /// `None` if the graph has no `(self, peer)` edge.
    ///
    /// # Panics
    ///
    /// Panics if `peer` is this node itself or out of range — those are
    /// caller bugs, not topology facts.
    pub fn try_port_to(&self, peer: NodeId) -> Option<Port> {
        assert!(peer.0 < self.n, "peer {peer} outside network");
        assert_ne!(peer, self.node, "a node has no port to itself");
        let k = match &self.wiring {
            Wiring::Complete => Some(if peer.0 < self.node.0 {
                peer.0
            } else {
                peer.0 - 1
            }),
            Wiring::Hub { clusters } => (peer.0 < *clusters).then_some(peer.0),
            Wiring::List(list) => list.binary_search(&peer.0).ok().map(|i| i as u32),
        }?;
        Some(Port(self.perm.invert(u64::from(k)) as u32))
    }

    /// The local port through which neighbour `peer` is reached.
    ///
    /// # Panics
    ///
    /// Panics if `peer` is this node itself, out of range, or not adjacent
    /// to this node; the non-edge message carries both endpoints and the
    /// topology seed so the failure is a replayable artifact.
    pub fn port_to(&self, peer: NodeId) -> Port {
        self.try_port_to(peer).unwrap_or_else(|| {
            panic!(
                "node {node} has no edge to {peer} (topology seed {seed:#018x})",
                node = self.node,
                seed = self.seed,
            )
        })
    }

    /// Iterates over this node's neighbours in port order.
    pub fn neighbors(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.degree).map(move |p| self.peer(Port(p)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn covers_all_neighbours_exactly_once() {
        let n = 97;
        for node in [0u32, 1, 48, 96] {
            let pm = PortMap::new(n, NodeId(node), 7);
            let mut seen = vec![false; n as usize];
            for p in 0..n - 1 {
                let peer = pm.peer(Port(p));
                assert_ne!(peer.0, node);
                assert!(!seen[peer.index()], "duplicate peer {peer}");
                seen[peer.index()] = true;
                assert_eq!(pm.port_to(peer), Port(p));
            }
            assert!(!seen[node as usize]);
            assert_eq!(seen.iter().filter(|&&s| s).count(), (n - 1) as usize);
        }
    }

    #[test]
    fn wiring_differs_across_nodes_and_seeds() {
        let a = PortMap::new(64, NodeId(0), 1);
        let b = PortMap::new(64, NodeId(1), 1);
        let c = PortMap::new(64, NodeId(0), 2);
        let same_ab = (0..63)
            .filter(|&p| a.peer(Port(p)) == b.peer(Port(p)))
            .count();
        let same_ac = (0..63)
            .filter(|&p| a.peer(Port(p)) == c.peer(Port(p)))
            .count();
        assert!(same_ab < 15);
        assert!(same_ac < 15);
    }

    #[test]
    fn two_node_network() {
        let pm0 = PortMap::new(2, NodeId(0), 0);
        let pm1 = PortMap::new(2, NodeId(1), 0);
        assert_eq!(pm0.peer(Port(0)), NodeId(1));
        assert_eq!(pm1.peer(Port(0)), NodeId(0));
    }

    #[test]
    fn hub_wiring_permutes_exactly_the_hubs() {
        let (n, clusters) = (12u32, 4u32);
        let pm = PortMap::with_wiring(n, NodeId(7), 3, Wiring::Hub { clusters });
        assert_eq!(pm.port_count(), clusters);
        let mut peers: Vec<u32> = pm.neighbors().map(|p| p.0).collect();
        peers.sort_unstable();
        assert_eq!(peers, vec![0, 1, 2, 3]);
        for h in 0..clusters {
            let port = pm.port_to(NodeId(h));
            assert_eq!(pm.peer(port), NodeId(h));
        }
        assert_eq!(pm.try_port_to(NodeId(5)), None, "non-hubs are not adjacent");
    }

    #[test]
    fn list_wiring_permutes_exactly_the_list() {
        let list: Arc<[u32]> = Arc::from([1u32, 4, 9].as_slice());
        let pm = PortMap::with_wiring(10, NodeId(6), 11, Wiring::List(list.clone()));
        assert_eq!(pm.port_count(), 3);
        let mut peers: Vec<u32> = pm.neighbors().map(|p| p.0).collect();
        peers.sort_unstable();
        assert_eq!(peers, vec![1, 4, 9]);
        for &v in list.iter() {
            assert_eq!(pm.peer(pm.port_to(NodeId(v))), NodeId(v));
        }
        assert_eq!(pm.try_port_to(NodeId(2)), None);
        assert_eq!(pm.try_port_to(NodeId(8)), None);
    }

    #[test]
    fn non_edge_panic_is_replayable() {
        let pm = PortMap::with_wiring(8, NodeId(5), 0xABCD, Wiring::Hub { clusters: 2 });
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| pm.port_to(NodeId(6))))
            .unwrap_err();
        let msg = err.downcast_ref::<String>().expect("string panic payload");
        assert!(msg.contains("node n5"), "{msg}");
        assert!(msg.contains("no edge to n6"), "{msg}");
        assert!(msg.contains("0x000000000000abcd"), "seed missing: {msg}");
    }

    #[test]
    #[should_panic(expected = "no port to itself")]
    fn port_to_self_panics() {
        PortMap::new(4, NodeId(2), 0).port_to(NodeId(2));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn oversized_port_panics() {
        PortMap::new(4, NodeId(0), 0).peer(Port(3));
    }

    #[test]
    #[should_panic(expected = "no neighbours")]
    fn zero_degree_wiring_panics_with_context() {
        PortMap::with_wiring(4, NodeId(1), 9, Wiring::List(Arc::from([].as_slice())));
    }
}
