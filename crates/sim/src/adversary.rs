//! Crash-fault adversaries.
//!
//! The paper's fault model (Section II): a **static** adversary selects the
//! faulty set before the execution starts, but may *adaptively* choose when
//! each faulty node crashes and which subset of the messages the node sends
//! in its crash round is actually delivered. A crashed node halts forever;
//! non-faulty nodes never lose messages.
//!
//! [`Adversary`] mirrors exactly that interface: it is asked once for the
//! faulty set, then once per round — with full visibility of the round's
//! outgoing traffic, which only *strengthens* the adversary — for crash
//! directives. The engine enforces the static constraint: only members of
//! the originally chosen faulty set may ever crash.

use rand::prelude::*;
use rand::rngs::SmallRng;

use crate::ids::{NodeId, Port, Round};

/// The set of nodes the adversary is allowed to crash.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FaultySet {
    members: Vec<bool>,
    count: usize,
}

impl FaultySet {
    /// An empty (fault-free) set for an `n`-node network.
    pub fn none(n: u32) -> Self {
        FaultySet {
            members: vec![false; n as usize],
            count: 0,
        }
    }

    /// Builds a faulty set from explicit node ids.
    ///
    /// # Panics
    ///
    /// Panics if any id is out of range.
    pub fn from_nodes<I: IntoIterator<Item = NodeId>>(n: u32, nodes: I) -> Self {
        let mut s = FaultySet::none(n);
        for node in nodes {
            assert!(node.0 < n, "faulty node {node} outside network");
            if !s.members[node.index()] {
                s.members[node.index()] = true;
                s.count += 1;
            }
        }
        s
    }

    /// Selects `f` faulty nodes uniformly at random.
    ///
    /// # Panics
    ///
    /// Panics if `f > n`.
    pub fn random(n: u32, f: usize, rng: &mut SmallRng) -> Self {
        assert!(f <= n as usize, "cannot make {f} of {n} nodes faulty");
        let picks = rand::seq::index::sample(rng, n as usize, f);
        FaultySet::from_nodes(n, picks.into_iter().map(|i| NodeId(i as u32)))
    }

    /// Whether `node` is in the faulty set.
    pub fn contains(&self, node: NodeId) -> bool {
        self.members[node.index()]
    }

    /// Number of faulty nodes.
    pub fn len(&self) -> usize {
        self.count
    }

    /// Whether the set is empty (fault-free execution).
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Iterates over the faulty node ids in increasing order.
    pub fn iter(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.members
            .iter()
            .enumerate()
            .filter(|(_, &m)| m)
            .map(|(i, _)| NodeId(i as u32))
    }
}

/// What happens to the messages a node sends in the round it crashes.
///
/// The paper: "an arbitrary subset (possibly all) of its messages for that
/// round may be lost (as determined by an adversary)".
#[derive(Clone, Debug, PartialEq)]
pub enum DeliveryFilter {
    /// All of the crash-round messages are delivered (crash *after* send).
    DeliverAll,
    /// None of the crash-round messages are delivered (crash *before* send).
    DropAll,
    /// Only the first `k` queued messages are delivered.
    KeepFirst(usize),
    /// Each crash-round message is independently delivered with probability `p`.
    DeliverEachWithProbability(f64),
    /// Only messages addressed to the listed destinations are delivered.
    KeepToDestinations(Vec<NodeId>),
}

impl DeliveryFilter {
    /// Applies the filter to a node's outgoing envelopes for its crash round.
    pub(crate) fn apply<M>(&self, envelopes: &mut Vec<Envelope<M>>, rng: &mut SmallRng) {
        match self {
            DeliveryFilter::DeliverAll => {}
            DeliveryFilter::DropAll => envelopes.clear(),
            DeliveryFilter::KeepFirst(k) => envelopes.truncate(*k),
            DeliveryFilter::DeliverEachWithProbability(p) => {
                envelopes.retain(|_| rng.random_bool(p.clamp(0.0, 1.0)));
            }
            DeliveryFilter::KeepToDestinations(dsts) => {
                envelopes.retain(|e| dsts.contains(&e.dst));
            }
        }
    }
}

/// An instruction to crash `node` in the current round, filtering its
/// current-round messages with `filter`.
#[derive(Clone, Debug, PartialEq)]
pub struct CrashDirective {
    /// The node to crash. Must be faulty and still alive.
    pub node: NodeId,
    /// What happens to the node's messages of this round.
    pub filter: DeliveryFilter,
}

/// A message in flight, as seen by the engine and the adversary.
#[derive(Clone, Debug)]
pub struct Envelope<M> {
    /// Sender.
    pub src: NodeId,
    /// Receiver (already resolved from the sender's port).
    pub dst: NodeId,
    /// The port `dst` will observe the message arriving on.
    pub dst_port: Port,
    /// Payload.
    pub msg: M,
}

/// Read-only view of the execution handed to the adversary each round.
///
/// The adversary sees everything — the full outgoing traffic of the round
/// and the global liveness state. A stronger adversary only makes the
/// measured guarantees more credible.
pub struct AdversaryView<'a, M> {
    pub(crate) round: Round,
    pub(crate) n: u32,
    pub(crate) faulty: &'a FaultySet,
    pub(crate) alive: &'a [bool],
    /// Outgoing envelopes of this round, grouped per sender.
    pub(crate) outgoing: &'a [Vec<Envelope<M>>],
}

impl<'a, M> AdversaryView<'a, M> {
    /// The current round.
    pub fn round(&self) -> Round {
        self.round
    }

    /// Network size.
    pub fn n(&self) -> u32 {
        self.n
    }

    /// The static faulty set.
    pub fn faulty(&self) -> &FaultySet {
        self.faulty
    }

    /// Whether `node` is still alive at the start of this round.
    pub fn is_alive(&self, node: NodeId) -> bool {
        self.alive[node.index()]
    }

    /// The envelopes `node` queued this round.
    pub fn outgoing_of(&self, node: NodeId) -> &[Envelope<M>] {
        &self.outgoing[node.index()]
    }

    /// All envelopes queued this round, in sender order.
    pub fn all_outgoing(&self) -> impl Iterator<Item = &Envelope<M>> + '_ {
        self.outgoing.iter().flatten()
    }

    /// Faulty nodes that are still alive (the crashable ones).
    pub fn crashable(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.faulty.iter().filter(move |&id| self.is_alive(id))
    }
}

/// A Byzantine rewrite of one node's outgoing traffic for one round.
///
/// Produced by [`Adversary::tamper`]; the engine replaces the node's
/// honestly queued envelopes with `sends` (resolving destination ports
/// itself). Only faulty, still-alive nodes may be tampered with.
#[derive(Clone, Debug)]
pub struct Tamper<M> {
    /// The corrupted node.
    pub node: NodeId,
    /// The forged messages `(destination, payload)` replacing the node's
    /// honest output this round.
    pub sends: Vec<(NodeId, M)>,
}

/// A crash-fault adversary: picks the faulty set once, then issues crash
/// directives round by round.
///
/// The optional [`Adversary::tamper`] hook upgrades it to a **Byzantine**
/// adversary (faulty nodes may send arbitrary messages instead of merely
/// crashing) — used by the extension experiments for the paper's open
/// question 3. Crash-only adversaries keep the default no-op.
pub trait Adversary<M>: Send {
    /// Chooses the faulty set before the execution starts (static model).
    fn faulty_set(&mut self, n: u32, rng: &mut SmallRng) -> FaultySet;

    /// Issues crash directives for the current round. Directives naming
    /// non-faulty or already-crashed nodes cause the engine to panic — they
    /// would violate the model.
    fn on_round(&mut self, view: &AdversaryView<'_, M>, rng: &mut SmallRng) -> Vec<CrashDirective>;

    /// Byzantine hook: rewrite the outgoing traffic of corrupted nodes
    /// this round. Applied before crash directives. Tampering with a
    /// non-faulty or crashed node panics the engine. Default: no
    /// tampering (the paper's crash-fault model).
    fn tamper(&mut self, view: &AdversaryView<'_, M>, rng: &mut SmallRng) -> Vec<Tamper<M>> {
        let _ = (view, rng);
        Vec::new()
    }
}

/// The fault-free adversary.
#[derive(Clone, Copy, Debug, Default)]
pub struct NoFaults;

impl<M> Adversary<M> for NoFaults {
    fn faulty_set(&mut self, n: u32, _rng: &mut SmallRng) -> FaultySet {
        FaultySet::none(n)
    }

    fn on_round(
        &mut self,
        _view: &AdversaryView<'_, M>,
        _rng: &mut SmallRng,
    ) -> Vec<CrashDirective> {
        Vec::new()
    }
}

/// Crashes all `f` (randomly chosen) faulty nodes at round 0, before they
/// send anything. The strongest *non-adaptive* schedule against protocols
/// whose safety depends on enough nodes participating at all.
#[derive(Clone, Copy, Debug)]
pub struct EagerCrash {
    /// Number of faulty nodes.
    pub f: usize,
}

impl EagerCrash {
    /// Crash `f` random nodes immediately.
    pub fn new(f: usize) -> Self {
        EagerCrash { f }
    }
}

impl<M> Adversary<M> for EagerCrash {
    fn faulty_set(&mut self, n: u32, rng: &mut SmallRng) -> FaultySet {
        FaultySet::random(n, self.f, rng)
    }

    fn on_round(
        &mut self,
        view: &AdversaryView<'_, M>,
        _rng: &mut SmallRng,
    ) -> Vec<CrashDirective> {
        if view.round() > 0 {
            return Vec::new();
        }
        view.crashable()
            .map(|node| CrashDirective {
                node,
                filter: DeliveryFilter::DropAll,
            })
            .collect()
    }
}

/// Crashes each faulty node at an independently random round in
/// `[0, horizon]`, with an independently random delivery filter.
#[derive(Clone, Debug)]
pub struct RandomCrash {
    /// Number of faulty nodes.
    pub f: usize,
    /// Latest possible crash round.
    pub horizon: Round,
    schedule: Vec<(NodeId, Round)>,
}

impl RandomCrash {
    /// Random faulty set of size `f`; each member crashes by round `horizon`.
    pub fn new(f: usize, horizon: Round) -> Self {
        RandomCrash {
            f,
            horizon,
            schedule: Vec::new(),
        }
    }
}

impl<M> Adversary<M> for RandomCrash {
    fn faulty_set(&mut self, n: u32, rng: &mut SmallRng) -> FaultySet {
        let set = FaultySet::random(n, self.f, rng);
        self.schedule = set
            .iter()
            .map(|id| (id, rng.random_range(0..=self.horizon)))
            .collect();
        set
    }

    fn on_round(&mut self, view: &AdversaryView<'_, M>, rng: &mut SmallRng) -> Vec<CrashDirective> {
        self.schedule
            .iter()
            .filter(|&&(node, when)| when == view.round() && view.is_alive(node))
            .map(|&(node, _)| {
                let filter = match rng.random_range(0..4u8) {
                    0 => DeliveryFilter::DeliverAll,
                    1 => DeliveryFilter::DropAll,
                    2 => {
                        let out = view.outgoing_of(node).len();
                        DeliveryFilter::KeepFirst(out / 2)
                    }
                    _ => DeliveryFilter::DeliverEachWithProbability(0.5),
                };
                CrashDirective { node, filter }
            })
            .collect()
    }
}

/// A fully scripted fault plan: explicit `(node, round, filter)` triples.
///
/// The deterministic workhorse for tests and for reproducing specific
/// counterexample schedules.
#[derive(Clone, Debug, Default)]
pub struct FaultPlan {
    entries: Vec<(NodeId, Round, DeliveryFilter)>,
}

impl FaultPlan {
    /// An empty plan (no crashes).
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// Adds a crash of `node` at `round` with `filter`; returns `self` for
    /// chaining.
    pub fn crash(mut self, node: NodeId, round: Round, filter: DeliveryFilter) -> Self {
        self.entries.push((node, round, filter));
        self
    }

    /// Builds a plan from explicit entries (the mutation/serde entry point:
    /// search strategies edit entry vectors and rebuild plans from them).
    pub fn from_entries(entries: Vec<(NodeId, Round, DeliveryFilter)>) -> Self {
        FaultPlan { entries }
    }

    /// The scheduled `(node, round, filter)` triples, in insertion order.
    pub fn entries(&self) -> &[(NodeId, Round, DeliveryFilter)] {
        &self.entries
    }

    /// A copy of the plan with entry `idx` removed (shrinker hook).
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn without_entry(&self, idx: usize) -> Self {
        let mut entries = self.entries.clone();
        entries.remove(idx);
        FaultPlan { entries }
    }

    /// A copy of the plan with entry `idx` replaced (mutation hook).
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn with_entry(&self, idx: usize, entry: (NodeId, Round, DeliveryFilter)) -> Self {
        let mut entries = self.entries.clone();
        entries[idx] = entry;
        FaultPlan { entries }
    }

    /// Number of scheduled crashes.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the plan schedules no crashes.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// Adversary executing a fixed [`FaultPlan`].
#[derive(Clone, Debug)]
pub struct ScriptedCrash {
    plan: FaultPlan,
}

impl ScriptedCrash {
    /// Executes exactly the crashes in `plan`.
    pub fn new(plan: FaultPlan) -> Self {
        ScriptedCrash { plan }
    }

    /// The plan this adversary executes.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }
}

impl<M> Adversary<M> for ScriptedCrash {
    fn faulty_set(&mut self, n: u32, _rng: &mut SmallRng) -> FaultySet {
        FaultySet::from_nodes(n, self.plan.entries.iter().map(|&(id, _, _)| id))
    }

    fn on_round(
        &mut self,
        view: &AdversaryView<'_, M>,
        _rng: &mut SmallRng,
    ) -> Vec<CrashDirective> {
        self.plan
            .entries
            .iter()
            .filter(|&&(node, when, _)| when == view.round() && view.is_alive(node))
            .map(|(node, _, filter)| CrashDirective {
                node: *node,
                filter: filter.clone(),
            })
            .collect()
    }
}

/// An adaptive adversary defined by a closure over the round view.
///
/// The faulty set is `f` uniformly random nodes; the closure decides, every
/// round, which of the still-alive faulty nodes crash and how. Protocol
/// crates use this to build message-inspecting worst cases (e.g. "crash the
/// current minimum-rank proposer", Section IV-A).
pub struct FnAdversary<M, F>
where
    F: FnMut(&AdversaryView<'_, M>, &mut SmallRng) -> Vec<CrashDirective> + Send,
{
    f: usize,
    decide: F,
    _marker: std::marker::PhantomData<fn(&M)>,
}

impl<M, F> FnAdversary<M, F>
where
    F: FnMut(&AdversaryView<'_, M>, &mut SmallRng) -> Vec<CrashDirective> + Send,
{
    /// `f` random faulty nodes, crash decisions delegated to `decide`.
    pub fn new(f: usize, decide: F) -> Self {
        FnAdversary {
            f,
            decide,
            _marker: std::marker::PhantomData,
        }
    }
}

impl<M, F> Adversary<M> for FnAdversary<M, F>
where
    F: FnMut(&AdversaryView<'_, M>, &mut SmallRng) -> Vec<CrashDirective> + Send,
{
    fn faulty_set(&mut self, n: u32, rng: &mut SmallRng) -> FaultySet {
        FaultySet::random(n, self.f, rng)
    }

    fn on_round(&mut self, view: &AdversaryView<'_, M>, rng: &mut SmallRng) -> Vec<CrashDirective> {
        (self.decide)(view, rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> SmallRng {
        SmallRng::seed_from_u64(123)
    }

    #[test]
    fn random_faulty_set_has_exact_size() {
        let s = FaultySet::random(100, 37, &mut rng());
        assert_eq!(s.len(), 37);
        assert_eq!(s.iter().count(), 37);
        assert!(s.iter().all(|id| id.0 < 100));
    }

    #[test]
    fn from_nodes_dedups() {
        let s = FaultySet::from_nodes(10, [NodeId(1), NodeId(1), NodeId(2)]);
        assert_eq!(s.len(), 2);
        assert!(s.contains(NodeId(1)));
        assert!(!s.contains(NodeId(0)));
    }

    fn env(i: u32) -> Envelope<()> {
        Envelope {
            src: NodeId(0),
            dst: NodeId(i),
            dst_port: Port(0),
            msg: (),
        }
    }

    #[test]
    fn filters_shape_deliveries() {
        let mut r = rng();
        let mk = || (1..=6).map(env).collect::<Vec<_>>();

        let mut all = mk();
        DeliveryFilter::DeliverAll.apply(&mut all, &mut r);
        assert_eq!(all.len(), 6);

        let mut none = mk();
        DeliveryFilter::DropAll.apply(&mut none, &mut r);
        assert!(none.is_empty());

        let mut first = mk();
        DeliveryFilter::KeepFirst(2).apply(&mut first, &mut r);
        assert_eq!(first.len(), 2);
        assert_eq!(first[1].dst, NodeId(2));

        let mut dests = mk();
        DeliveryFilter::KeepToDestinations(vec![NodeId(3), NodeId(5)]).apply(&mut dests, &mut r);
        assert_eq!(dests.len(), 2);

        let mut sure = mk();
        DeliveryFilter::DeliverEachWithProbability(1.0).apply(&mut sure, &mut r);
        assert_eq!(sure.len(), 6);
    }

    #[test]
    fn scripted_plan_fires_at_right_round() {
        let plan = FaultPlan::new().crash(NodeId(2), 3, DeliveryFilter::DropAll);
        let mut adv = ScriptedCrash::new(plan);
        let mut r = rng();
        let faulty = <ScriptedCrash as Adversary<()>>::faulty_set(&mut adv, 5, &mut r);
        assert!(faulty.contains(NodeId(2)));
        let alive = vec![true; 5];
        let outgoing: Vec<Vec<Envelope<()>>> = vec![Vec::new(); 5];
        for round in 0..5 {
            let view = AdversaryView {
                round,
                n: 5,
                faulty: &faulty,
                alive: &alive,
                outgoing: &outgoing,
            };
            let d = adv.on_round(&view, &mut r);
            if round == 3 {
                assert_eq!(d.len(), 1);
                assert_eq!(d[0].node, NodeId(2));
            } else {
                assert!(d.is_empty());
            }
        }
    }

    #[test]
    fn eager_crash_only_round_zero() {
        let mut adv = EagerCrash::new(3);
        let mut r = rng();
        let faulty = <EagerCrash as Adversary<()>>::faulty_set(&mut adv, 10, &mut r);
        let alive = vec![true; 10];
        let outgoing: Vec<Vec<Envelope<()>>> = vec![Vec::new(); 10];
        let view0 = AdversaryView {
            round: 0,
            n: 10,
            faulty: &faulty,
            alive: &alive,
            outgoing: &outgoing,
        };
        assert_eq!(adv.on_round(&view0, &mut r).len(), 3);
        let view1 = AdversaryView { round: 1, ..view0 };
        assert!(adv.on_round(&view1, &mut r).is_empty());
    }

    #[test]
    fn fn_adversary_delegates_decisions() {
        let mut calls = 0usize;
        {
            let mut adv = FnAdversary::<(), _>::new(2, |view, _rng| {
                view.crashable()
                    .take(1)
                    .map(|node| CrashDirective {
                        node,
                        filter: DeliveryFilter::DropAll,
                    })
                    .collect()
            });
            let mut r = rng();
            let faulty = adv.faulty_set(10, &mut r);
            assert_eq!(faulty.len(), 2);
            let alive = vec![true; 10];
            let outgoing: Vec<Vec<Envelope<()>>> = vec![Vec::new(); 10];
            let view = AdversaryView {
                round: 0,
                n: 10,
                faulty: &faulty,
                alive: &alive,
                outgoing: &outgoing,
            };
            let d = adv.on_round(&view, &mut r);
            assert_eq!(d.len(), 1);
            assert!(faulty.contains(d[0].node));
            calls += d.len();
        }
        assert_eq!(calls, 1);
    }

    #[test]
    fn adversary_view_exposes_globals() {
        let faulty = FaultySet::from_nodes(6, [NodeId(1), NodeId(4)]);
        let alive = vec![true, true, false, true, true, true];
        let outgoing: Vec<Vec<Envelope<()>>> = vec![
            vec![env(1)],
            Vec::new(),
            Vec::new(),
            vec![env(0), env(2)],
            Vec::new(),
            Vec::new(),
        ];
        let view = AdversaryView {
            round: 3,
            n: 6,
            faulty: &faulty,
            alive: &alive,
            outgoing: &outgoing,
        };
        assert_eq!(view.round(), 3);
        assert_eq!(view.n(), 6);
        assert_eq!(view.faulty().len(), 2);
        assert!(!view.is_alive(NodeId(2)));
        assert_eq!(view.all_outgoing().count(), 3);
        assert_eq!(view.outgoing_of(NodeId(3)).len(), 2);
        // Crashable = faulty ∧ alive.
        let crashable: Vec<NodeId> = view.crashable().collect();
        assert_eq!(crashable, vec![NodeId(1), NodeId(4)]);
    }

    #[test]
    fn random_crash_eventually_crashes_everyone() {
        let mut adv = RandomCrash::new(5, 4);
        let mut r = rng();
        let faulty = <RandomCrash as Adversary<()>>::faulty_set(&mut adv, 20, &mut r);
        let mut alive = vec![true; 20];
        let outgoing: Vec<Vec<Envelope<()>>> = vec![Vec::new(); 20];
        let mut crashed = 0;
        for round in 0..=4 {
            let view = AdversaryView {
                round,
                n: 20,
                faulty: &faulty,
                alive: &alive,
                outgoing: &outgoing,
            };
            for d in adv.on_round(&view, &mut r) {
                assert!(faulty.contains(d.node));
                alive[d.node.index()] = false;
                crashed += 1;
            }
        }
        assert_eq!(crashed, 5);
    }
}
