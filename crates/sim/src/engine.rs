//! The synchronous round engine.
//!
//! [`run`] executes one protocol instance per node for up to
//! [`SimConfig::max_rounds`] rounds under a crash adversary, implementing
//! the model of Section II:
//!
//! 1. every alive node is activated and queues messages on its ports;
//! 2. the adversary, seeing the round's traffic, crashes any subset of the
//!    still-alive *faulty* nodes and filters the crash-round messages of
//!    each (an arbitrary subset may be lost);
//! 3. surviving messages are delivered, to be observed by their receivers
//!    at the next activation. Messages from non-crashing nodes are never
//!    lost; messages to already-crashed nodes vanish (the receiver halted).
//!
//! Executions are deterministic functions of `(SimConfig, seed)`: node
//! randomness, topology wiring, adversary randomness and filter randomness
//! all derive from independent seeded streams.
//!
//! The engine is one of two drivers of the model: the per-node state lives
//! in [`crate::node::NodeHarness`] and the per-round control plane
//! (adversary, filters, accounting) in [`crate::round::ControlCore`], both
//! shared with the `ftc-net` socket runtime. The engine merely loops the
//! two in process, which is why a network run with the same `(SimConfig,
//! seed)` reproduces an engine run decision for decision.

use std::fmt;

use crate::adversary::{Adversary, Envelope, FaultySet};
use crate::ids::Port;
use crate::ids::{NodeId, Round};
use crate::metrics::Metrics;
use crate::node::NodeHarness;
use crate::ports::PortMap;
use crate::protocol::{Incoming, Protocol};
use crate::round::{network_ports, resolve_sends_into, ControlCore};
use crate::topology::Topology;
use crate::trace::Trace;

/// Rejected [`SimConfig`] parameters, reported before anything runs.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum ConfigError {
    /// `n < 2` — a complete network needs at least two nodes.
    NetworkTooSmall {
        /// The offending network size.
        n: u32,
    },
    /// Edge failure probability outside `[0, 1)`.
    EdgeFailureOutOfRange {
        /// The offending probability.
        p: f64,
    },
    /// Diameter-two hub count outside `1..=n`.
    ClustersOutOfRange {
        /// The offending hub count.
        clusters: u32,
        /// Network size it was checked against.
        n: u32,
    },
    /// Random-regular degree outside `1..=n-1`, or `n·d` odd (no such
    /// graph exists).
    DegreeOutOfRange {
        /// The offending degree.
        d: u32,
        /// Network size it was checked against.
        n: u32,
    },
    /// Explicit adjacency with the wrong number of neighbour lists.
    AdjacencyWrongLength {
        /// Number of lists supplied.
        lists: u32,
        /// Network size it was checked against.
        n: u32,
    },
    /// Explicit adjacency list that is empty, unsorted, self-looping,
    /// out of range, or asymmetric at `node`.
    BadAdjacency {
        /// First node whose list violates the invariants.
        node: u32,
    },
    /// A Byzantine adversary was configured with more faulty nodes than
    /// the network holds.
    ByzantineBudgetExceedsN {
        /// Requested faulty-node budget.
        b: u32,
        /// Network size it was checked against.
        n: u32,
    },
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::NetworkTooSmall { n } => {
                write!(f, "network size must be at least 2, got {n}")
            }
            ConfigError::EdgeFailureOutOfRange { p } => {
                write!(f, "edge failure probability must be in [0, 1), got {p}")
            }
            ConfigError::ClustersOutOfRange { clusters, n } => {
                write!(
                    f,
                    "diameter-two hub count must be in 1..={n}, got {clusters}"
                )
            }
            ConfigError::DegreeOutOfRange { d, n } => {
                write!(
                    f,
                    "random-regular degree must be in 1..={max} with n·d even, \
                     got d={d} at n={n}",
                    max = n.saturating_sub(1)
                )
            }
            ConfigError::AdjacencyWrongLength { lists, n } => {
                write!(f, "explicit adjacency has {lists} lists for {n} nodes")
            }
            ConfigError::BadAdjacency { node } => {
                write!(
                    f,
                    "explicit adjacency invalid at node {node}: lists must be \
                     sorted, self-free, symmetric, in range, and non-empty"
                )
            }
            ConfigError::ByzantineBudgetExceedsN { b, n } => {
                write!(
                    f,
                    "byzantine budget b={b} exceeds network size n={n}; \
                     at most n nodes can be faulty"
                )
            }
        }
    }
}

impl std::error::Error for ConfigError {}

/// Configuration of a single execution.
#[derive(Clone, Debug)]
pub struct SimConfig {
    /// Network size.
    pub n: u32,
    /// Master seed; every random stream of the run derives from it.
    pub seed: u64,
    /// Hard round limit (protocols may quiesce earlier).
    pub max_rounds: u32,
    /// Grant KT1 knowledge (neighbour identities) to protocols.
    pub kt1: bool,
    /// Record a full message [`Trace`] (needed for lower-bound analysis).
    pub record_trace: bool,
    /// If set, count CONGEST violations: `(round, edge)` pairs in which
    /// more than this many bits crossed a single **directed** edge.
    ///
    /// Accounting is per direction, matching the standard CONGEST
    /// convention of a `B`-bit budget per link per direction per round:
    /// `a → b` and `b → a` traffic in the same round are budgeted as two
    /// edges, and [`Metrics::max_edge_bits_per_round`] reports the
    /// directed maximum. This is deliberately *not* the same
    /// canonicalization as [`SimConfig::edge_failure_prob`], which kills
    /// **undirected** edges (a physical link dies in both directions).
    pub congest_bits: Option<u32>,
    /// If set, each node may send at most this many messages over the
    /// whole execution; excess sends are silently suppressed (and counted
    /// in [`Metrics::msgs_suppressed`]). Models the "budgeted algorithm"
    /// of the lower-bound experiments (Theorems 4.2/5.2): an algorithm
    /// that chooses to send at most `n·cap` messages.
    pub send_cap: Option<u32>,
    /// **Extension knob (default 0).** Each undirected edge of the
    /// complete graph is independently *dead* with this probability
    /// (deterministically derived from the seed); messages across dead
    /// edges vanish. This leaves the model of the paper — delivery from
    /// non-crashed nodes is no longer reliable — and is used by
    /// experiment E13 to probe the protocols' robustness towards
    /// incomplete topologies (open question 2).
    pub edge_failure_prob: f64,
    /// The network graph (default [`Topology::Complete`], the paper's
    /// model). Non-complete topologies wire each node's ports over its
    /// actual neighbours; see [`crate::topology`].
    pub topology: Topology,
}

impl SimConfig {
    /// A default configuration for an `n`-node network: seed 0, a generous
    /// `8·(⌊log₂ n⌋ + 3)` round limit, KT0, no tracing.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2`. Front ends that want a recoverable error should
    /// use [`SimConfig::try_new`].
    pub fn new(n: u32) -> Self {
        SimConfig::try_new(n).expect("a complete network needs at least two nodes")
    }

    /// Like [`SimConfig::new`] but rejects invalid sizes with an error
    /// instead of panicking — the entry point for CLI / service front ends
    /// that validate user input early.
    pub fn try_new(n: u32) -> Result<Self, ConfigError> {
        if n < 2 {
            return Err(ConfigError::NetworkTooSmall { n });
        }
        // `32 - leading_zeros` is ⌊log₂ n⌋ + 1, so the limit below is
        // 8·(⌊log₂ n⌋ + 3): 32 rounds at n=2, 56 at n=16, 104 at n=1024.
        // Committed lab baselines depend on these exact values — do not
        // change the formula without regenerating them.
        let log2n = 32 - n.leading_zeros();
        Ok(SimConfig {
            n,
            seed: 0,
            max_rounds: 8 * (log2n + 2),
            kt1: false,
            record_trace: false,
            congest_bits: None,
            send_cap: None,
            edge_failure_prob: 0.0,
            topology: Topology::Complete,
        })
    }

    /// Validates the assembled configuration (size, probabilities) in one
    /// place, for front ends that mutate fields directly.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.n < 2 {
            return Err(ConfigError::NetworkTooSmall { n: self.n });
        }
        if !(0.0..1.0).contains(&self.edge_failure_prob) {
            return Err(ConfigError::EdgeFailureOutOfRange {
                p: self.edge_failure_prob,
            });
        }
        self.topology.validate(self.n)
    }

    /// Sets the master seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the round limit.
    pub fn max_rounds(mut self, rounds: u32) -> Self {
        self.max_rounds = rounds;
        self
    }

    /// Enables or disables KT1 knowledge.
    pub fn kt1(mut self, kt1: bool) -> Self {
        self.kt1 = kt1;
        self
    }

    /// Enables or disables trace recording.
    pub fn record_trace(mut self, record: bool) -> Self {
        self.record_trace = record;
        self
    }

    /// Sets the CONGEST per-edge-per-round bit budget to check against.
    pub fn congest_bits(mut self, bits: u32) -> Self {
        self.congest_bits = Some(bits);
        self
    }

    /// Caps the number of messages each node may send over the whole
    /// execution (see [`SimConfig::send_cap`]).
    pub fn send_cap(mut self, cap: u32) -> Self {
        self.send_cap = Some(cap);
        self
    }

    /// Kills each undirected edge independently with probability `p`
    /// (see [`SimConfig::edge_failure_prob`]).
    ///
    /// # Panics
    ///
    /// Panics unless `0 ≤ p < 1`.
    pub fn edge_failure_prob(mut self, p: f64) -> Self {
        assert!(
            (0.0..1.0).contains(&p),
            "edge failure prob must be in [0,1)"
        );
        self.edge_failure_prob = p;
        self
    }

    /// Sets the network graph (see [`crate::topology::Topology`]).
    ///
    /// # Panics
    ///
    /// Panics if the topology is invalid for this network size; front
    /// ends that want a recoverable error should set the field and call
    /// [`SimConfig::validate`].
    pub fn topology(mut self, topology: Topology) -> Self {
        topology
            .validate(self.n)
            .unwrap_or_else(|e| panic!("invalid topology for n={}: {e}", self.n));
        self.topology = topology;
        self
    }
}

/// Everything produced by one execution.
#[derive(Debug)]
pub struct RunResult<P> {
    /// Accounting (messages, bits, rounds, congestion, crashes).
    pub metrics: Metrics,
    /// Final protocol state of every node — including nodes that crashed,
    /// whose state is frozen at the crash.
    pub states: Vec<P>,
    /// For each node, the round it crashed in (`None` = survived).
    pub crashed_at: Vec<Option<Round>>,
    /// The faulty set the adversary committed to.
    pub faulty: FaultySet,
    /// The message trace, when recording was enabled.
    pub trace: Option<Trace>,
    /// Rounds in which more than [`SimConfig::congest_bits`] bits crossed
    /// one edge (always 0 when the check is disabled).
    pub congest_violations: u64,
}

impl<P> RunResult<P> {
    /// Network size.
    pub fn n(&self) -> u32 {
        self.states.len() as u32
    }

    /// Whether `node` was still alive at the end of the run.
    pub fn is_alive(&self, node: NodeId) -> bool {
        self.crashed_at[node.index()].is_none()
    }

    /// Iterates over `(id, state)` of the nodes that never crashed.
    pub fn surviving_states(&self) -> impl Iterator<Item = (NodeId, &P)> + '_ {
        self.states
            .iter()
            .enumerate()
            .filter(move |(i, _)| self.crashed_at[*i].is_none())
            .map(|(i, s)| (NodeId(i as u32), s))
    }

    /// Iterates over `(id, state)` of **all** nodes, crashed or not.
    pub fn all_states(&self) -> impl Iterator<Item = (NodeId, &P)> + '_ {
        self.states
            .iter()
            .enumerate()
            .map(|(i, s)| (NodeId(i as u32), s))
    }

    /// Number of surviving (never crashed) nodes.
    pub fn survivor_count(&self) -> usize {
        self.crashed_at.iter().filter(|c| c.is_none()).count()
    }
}

/// Runs one execution of `protocol` under `adversary`.
///
/// `factory` is called once per node, in id order, to build the initial
/// protocol state (closures typically capture the input assignment, e.g.
/// the agreement input bits).
///
/// Equivalent to [`run_sharded`] with one intra-trial worker.
///
/// # Panics
///
/// Panics if the adversary violates the model: crashing a node outside its
/// committed faulty set, or crashing a node twice.
pub fn run<P, F, A>(cfg: &SimConfig, factory: F, adversary: &mut A) -> RunResult<P>
where
    P: Protocol,
    F: FnMut(NodeId) -> P,
    A: Adversary<P::Msg> + ?Sized,
{
    run_sharded(cfg, factory, adversary, 1)
}

/// Below this many agenda entries a round is activated serially even when
/// `intra_jobs > 1`: spawning scoped workers costs more than the work.
const INTRA_SHARD_MIN: usize = 1024;

/// Runs one execution like [`run`], sharding each round's node activations
/// across up to `intra_jobs` threads.
///
/// This is *intra-trial* parallelism, complementing the *trials-across-
/// cores* parallelism of [`crate::runner::ParRunner`]: one huge trial (say
/// `n = 1,000,000`) can use the whole machine. The round's agenda (the
/// nodes that act, in id order) is cut into contiguous chunks; each worker
/// activates its chunk against disjoint slices of the node/buffer arrays
/// and the results are merged back in chunk order. Activations are
/// independent by the model (a node sees only its own state, RNG and
/// inbox), every write is slot-indexed by node id, and the only reductions
/// are order-insensitive integer sums — so the merged round, and therefore
/// the whole run, is bit-identical for every `intra_jobs` value. The
/// control plane and delivery stay serial; they are `O(traffic)`.
///
/// `intra_jobs == 0` is treated as 1. The result is a pure function of
/// `(cfg, seed)` — `intra_jobs` deliberately lives outside [`SimConfig`].
///
/// # Panics
///
/// Panics if the adversary violates the model: crashing a node outside its
/// committed faulty set, or crashing a node twice.
pub fn run_sharded<P, F, A>(
    cfg: &SimConfig,
    mut factory: F,
    adversary: &mut A,
    intra_jobs: usize,
) -> RunResult<P>
where
    P: Protocol,
    F: FnMut(NodeId) -> P,
    A: Adversary<P::Msg> + ?Sized,
{
    let n = cfg.n;
    let nn = n as usize;
    let intra_jobs = intra_jobs.max(1);

    let ports = network_ports(cfg);
    let mut nodes: Vec<NodeHarness<P>> = (0..n)
        .map(|i| {
            let id = NodeId(i);
            NodeHarness::with_ports(cfg, id, factory(id), ports[id.index()].clone())
        })
        .collect();
    let mut core = ControlCore::new(cfg, adversary);

    // Pooled round buffers: allocated once, reused every round. `outgoing`
    // is filled at activation, filtered in place by the control core, and
    // drained into `inboxes` at delivery — so steady-state rounds touch the
    // allocator only when a protocol outgrows its previous high-water mark.
    let mut inboxes: Vec<Vec<Incoming<P::Msg>>> = vec![Vec::new(); nn];
    let mut outgoing: Vec<Vec<Envelope<P::Msg>>> = vec![Vec::new(); nn];
    let mut sends: Vec<(Port, P::Msg)> = Vec::new();
    let mut terminated = vec![false; nn];

    // The agenda makes the round sparse: only nodes that received a message
    // last round or declined the `is_inert` skip hint are activated, so a
    // round costs O(agenda + traffic) instead of O(n). Round 0 activates
    // everyone. `queued` dedups next-round insertions in O(1) each and is
    // all-false between rounds; `undone` counts alive nodes not yet
    // terminated, replacing the old O(n) quiescence scan.
    let mut agenda: Vec<u32> = (0..n).collect();
    let mut next_agenda: Vec<u32> = Vec::new();
    let mut queued = vec![false; nn];
    let mut undone = nn;

    for round in 0..cfg.max_rounds {
        // --- 1. activation: every agenda node still alive runs and queues
        // messages, sharded across workers when the agenda is large. ---
        let mut suppressed = 0u64;
        if intra_jobs > 1 && agenda.len() >= INTRA_SHARD_MIN {
            let (supp, undone_delta) = activate_sharded(
                &mut nodes,
                &mut inboxes,
                &mut outgoing,
                &mut terminated,
                core.alive(),
                &ports,
                &agenda,
                &mut next_agenda,
                round,
                intra_jobs,
            );
            suppressed = supp;
            undone = (undone as i64 + undone_delta) as usize;
            for &su in &next_agenda {
                queued[su as usize] = true;
            }
        } else {
            for &su in &agenda {
                let u = su as usize;
                if !core.is_alive(NodeId(su)) {
                    continue;
                }
                let act = nodes[u].activate_into(round, &inboxes[u], &mut sends);
                suppressed += act.suppressed;
                if terminated[u] != act.terminated {
                    undone = if act.terminated {
                        undone - 1
                    } else {
                        undone + 1
                    };
                    terminated[u] = act.terminated;
                }
                resolve_sends_into(&ports, NodeId(su), &mut sends, &mut outgoing[u]);
                inboxes[u].clear();
                if !act.inert {
                    next_agenda.push(su);
                    queued[u] = true;
                }
            }
        }

        // --- 2. control plane: tampering, crashes, filters, accounting.
        // Filters `outgoing` down to the deliverable envelopes in place. ---
        let verdict =
            core.finish_round_touched(round, &mut outgoing, &agenda, suppressed, adversary, &ports);
        for &c in &verdict.crashed {
            if !terminated[c.index()] {
                undone -= 1;
            }
        }

        // --- 3. delivery: surviving messages reach next-round inboxes, and
        // their receivers join the next agenda. Tampering may have conjured
        // traffic for senders outside the agenda; merge those in (rare). ---
        let merged: Vec<u32>;
        let deliver_order: &[u32] = if verdict.tampered_extra.is_empty() {
            &agenda
        } else {
            let mut m: Vec<u32> = agenda
                .iter()
                .copied()
                .chain(verdict.tampered_extra.iter().map(|d| d.0))
                .collect();
            m.sort_unstable();
            merged = m;
            &merged
        };
        for &su in deliver_order {
            for e in outgoing[su as usize].drain(..) {
                let d = e.dst.index();
                if !queued[d] {
                    queued[d] = true;
                    next_agenda.push(e.dst.0);
                }
                inboxes[d].push(Incoming {
                    port: e.dst_port,
                    msg: e.msg,
                });
            }
        }

        // --- 4. early quiescence (same condition as the historical O(n)
        // scan: nothing delivered and every alive node terminated). ---
        if verdict.delivered == 0 && undone == 0 {
            break;
        }

        // --- 5. agenda swap: receivers were appended after the (sorted)
        // activation survivors, so restore id order for the next round. ---
        std::mem::swap(&mut agenda, &mut next_agenda);
        next_agenda.clear();
        agenda.sort_unstable();
        for &su in &agenda {
            queued[su as usize] = false;
        }
    }

    let states = nodes.into_iter().map(NodeHarness::into_state).collect();
    let out = core.finish();
    RunResult {
        metrics: out.metrics,
        states,
        crashed_at: out.crashed_at,
        faulty: out.faulty,
        trace: out.trace,
        congest_violations: out.congest_violations,
    }
}

/// One sharded activation phase: cuts `agenda` into contiguous chunks and
/// activates each on its own worker against disjoint `&mut` windows of the
/// per-node arrays. Returns the summed suppressed count and the net change
/// to the not-yet-terminated counter; the ids each worker kept for the
/// next agenda (non-inert activations) are appended to `next_agenda` in
/// chunk order, which preserves ascending id order.
#[allow(clippy::too_many_arguments)]
fn activate_sharded<P: Protocol>(
    nodes: &mut [NodeHarness<P>],
    inboxes: &mut [Vec<Incoming<P::Msg>>],
    outgoing: &mut [Vec<Envelope<P::Msg>>],
    terminated: &mut [bool],
    alive: &[bool],
    ports: &[PortMap],
    agenda: &[u32],
    next_agenda: &mut Vec<u32>,
    round: Round,
    intra_jobs: usize,
) -> (u64, i64) {
    let chunk_len = agenda.len().div_ceil(intra_jobs);
    let results = crossbeam::scope(|scope| {
        let mut handles = Vec::new();
        // Each agenda chunk spans a disjoint ascending id range, so the
        // per-node arrays can be carved into per-worker windows with
        // `split_at_mut`; a worker indexes its window by `id - base`.
        let mut rest_nodes = nodes;
        let mut rest_inboxes = inboxes;
        let mut rest_outgoing = outgoing;
        let mut rest_terminated = terminated;
        let mut base = 0usize;
        for chunk in agenda.chunks(chunk_len) {
            let end = *chunk.last().expect("chunks are non-empty") as usize + 1;
            let take = end - base;
            let (nodes_w, nr) = rest_nodes.split_at_mut(take);
            let (inboxes_w, ir) = rest_inboxes.split_at_mut(take);
            let (outgoing_w, or) = rest_outgoing.split_at_mut(take);
            let (terminated_w, tr) = rest_terminated.split_at_mut(take);
            rest_nodes = nr;
            rest_inboxes = ir;
            rest_outgoing = or;
            rest_terminated = tr;
            let window_base = base;
            base = end;
            handles.push(scope.spawn(move |_| {
                let mut sends: Vec<(Port, P::Msg)> = Vec::new();
                let mut suppressed = 0u64;
                let mut undone_delta = 0i64;
                let mut keep: Vec<u32> = Vec::new();
                for &su in chunk {
                    let u = su as usize - window_base;
                    if !alive[su as usize] {
                        continue;
                    }
                    let act = nodes_w[u].activate_into(round, &inboxes_w[u], &mut sends);
                    suppressed += act.suppressed;
                    if terminated_w[u] != act.terminated {
                        undone_delta += if act.terminated { -1 } else { 1 };
                        terminated_w[u] = act.terminated;
                    }
                    resolve_sends_into(ports, NodeId(su), &mut sends, &mut outgoing_w[u]);
                    inboxes_w[u].clear();
                    if !act.inert {
                        keep.push(su);
                    }
                }
                (suppressed, undone_delta, keep)
            }));
        }
        handles
            .into_iter()
            .map(|h| h.join().expect("activation worker panicked"))
            .collect::<Vec<_>>()
    })
    .expect("activation scope panicked");

    let mut suppressed = 0u64;
    let mut undone_delta = 0i64;
    for (supp, delta, keep) in results {
        suppressed += supp;
        undone_delta += delta;
        next_agenda.extend_from_slice(&keep);
    }
    (suppressed, undone_delta)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adversary::{
        AdversaryView, CrashDirective, DeliveryFilter, EagerCrash, FaultPlan, NoFaults,
        ScriptedCrash,
    };
    use crate::ids::Port;
    use crate::protocol::Ctx;
    use rand::rngs::SmallRng;

    /// Each node broadcasts its round number as `u64` for 3 rounds and
    /// counts what it hears.
    struct Chatter {
        heard: u64,
        rounds: u32,
    }

    impl Protocol for Chatter {
        type Msg = u64;
        fn on_start(&mut self, ctx: &mut Ctx<'_, u64>) {
            ctx.broadcast(0);
        }
        fn on_round(&mut self, ctx: &mut Ctx<'_, u64>, inbox: &[Incoming<u64>]) {
            self.heard += inbox.len() as u64;
            self.rounds += 1;
            if self.rounds < 3 {
                ctx.broadcast(u64::from(ctx.round()));
            }
        }
        fn is_terminated(&self) -> bool {
            self.rounds >= 3
        }
    }

    #[test]
    fn fault_free_broadcast_counts_add_up() {
        let n = 16u32;
        let cfg = SimConfig::new(n).seed(5).max_rounds(10);
        let r = run(
            &cfg,
            |_| Chatter {
                heard: 0,
                rounds: 0,
            },
            &mut NoFaults,
        );
        // 3 broadcast rounds of n*(n-1) messages each.
        let per_round = u64::from(n) * u64::from(n - 1);
        assert_eq!(r.metrics.msgs_sent, 3 * per_round);
        assert_eq!(r.metrics.msgs_delivered, 3 * per_round);
        let total_heard: u64 = r.states.iter().map(|s| s.heard).sum();
        assert_eq!(total_heard, 3 * per_round);
        // Early quiescence: 3 send rounds + 1 drain round.
        assert!(r.metrics.rounds <= 5);
        assert_eq!(r.congest_violations, 0);
    }

    #[test]
    fn eager_crash_silences_faulty_nodes() {
        let n = 16u32;
        let cfg = SimConfig::new(n).seed(5).max_rounds(10);
        let mut adv = EagerCrash::new(4);
        let r = run(
            &cfg,
            |_| Chatter {
                heard: 0,
                rounds: 0,
            },
            &mut adv,
        );
        assert_eq!(r.survivor_count(), 12);
        assert_eq!(r.metrics.crash_count(), 4);
        // Crashed-at-0 nodes broadcast then had everything dropped:
        // delivered = sent - dropped_by_crash - sent_to_dead.
        assert!(r.metrics.msgs_delivered < r.metrics.msgs_sent);
        for (id, _) in r.surviving_states() {
            assert!(!r.faulty.contains(id) || r.is_alive(id));
        }
    }

    #[test]
    fn scripted_crash_freezes_state_at_crash_round() {
        let n = 8u32;
        let plan = FaultPlan::new().crash(NodeId(3), 1, DeliveryFilter::DropAll);
        let cfg = SimConfig::new(n).seed(1).max_rounds(10);
        let mut adv = ScriptedCrash::new(plan);
        let r = run(
            &cfg,
            |_| Chatter {
                heard: 0,
                rounds: 0,
            },
            &mut adv,
        );
        assert_eq!(r.crashed_at[3], Some(1));
        // Node 3 executed rounds 0 and 1 (its crash round) only.
        assert_eq!(r.states[3].rounds, 1);
        assert_eq!(r.survivor_count(), 7);
    }

    #[test]
    fn deterministic_replay() {
        let cfg = SimConfig::new(32).seed(99).max_rounds(10);
        let mut adv1 = EagerCrash::new(8);
        let mut adv2 = EagerCrash::new(8);
        let r1 = run(
            &cfg,
            |_| Chatter {
                heard: 0,
                rounds: 0,
            },
            &mut adv1,
        );
        let r2 = run(
            &cfg,
            |_| Chatter {
                heard: 0,
                rounds: 0,
            },
            &mut adv2,
        );
        assert_eq!(r1.metrics.msgs_sent, r2.metrics.msgs_sent);
        assert_eq!(r1.metrics.msgs_delivered, r2.metrics.msgs_delivered);
        assert_eq!(r1.crashed_at, r2.crashed_at);
        let h1: Vec<u64> = r1.states.iter().map(|s| s.heard).collect();
        let h2: Vec<u64> = r2.states.iter().map(|s| s.heard).collect();
        assert_eq!(h1, h2);
    }

    #[test]
    fn congest_accounting_flags_oversized_edges() {
        struct Fat;
        impl Protocol for Fat {
            type Msg = u64;
            fn on_start(&mut self, ctx: &mut Ctx<'_, u64>) {
                // 3 messages of 64 bits on the same edge in one round.
                ctx.send(Port(0), 1);
                ctx.send(Port(0), 2);
                ctx.send(Port(0), 3);
            }
            fn on_round(&mut self, _: &mut Ctx<'_, u64>, _: &[Incoming<u64>]) {}
            fn is_terminated(&self) -> bool {
                true
            }
        }
        let cfg = SimConfig::new(4).seed(0).max_rounds(3).congest_bits(64);
        let r = run(&cfg, |_| Fat, &mut NoFaults);
        assert_eq!(r.metrics.max_edge_bits_per_round, 192);
        assert_eq!(r.congest_violations, 4); // each of the 4 nodes overloads one edge
    }

    #[test]
    fn trace_records_sends_and_suppressions() {
        let n = 8u32;
        let plan = FaultPlan::new().crash(NodeId(0), 0, DeliveryFilter::KeepFirst(2));
        let cfg = SimConfig::new(n).seed(3).max_rounds(6).record_trace(true);
        let mut adv = ScriptedCrash::new(plan);
        let r = run(
            &cfg,
            |_| Chatter {
                heard: 0,
                rounds: 0,
            },
            &mut adv,
        );
        let tr = r.trace.expect("trace enabled");
        let from0: Vec<_> = tr
            .events()
            .iter()
            .filter(|e| e.src == NodeId(0) && e.round == 0)
            .collect();
        assert_eq!(from0.len(), (n - 1) as usize);
        assert_eq!(from0.iter().filter(|e| e.delivered).count(), 2);
        // Messages *to* node 0 after its crash are marked undelivered.
        assert!(tr
            .events()
            .iter()
            .filter(|e| e.dst == NodeId(0) && e.round >= 1)
            .all(|e| !e.delivered));
    }

    #[test]
    fn edge_failures_drop_a_matching_fraction() {
        let n = 64u32;
        let cfg = SimConfig::new(n)
            .seed(9)
            .max_rounds(10)
            .edge_failure_prob(0.25);
        let r = run(
            &cfg,
            |_| Chatter {
                heard: 0,
                rounds: 0,
            },
            &mut NoFaults,
        );
        let total = r.metrics.msgs_sent;
        let lost = r.metrics.msgs_lost_edges;
        let frac = lost as f64 / total as f64;
        assert!((frac - 0.25).abs() < 0.06, "lost fraction {frac}");
        // Determinism: the same edge is dead in both directions and in
        // every round, so re-running gives identical losses.
        let r2 = run(
            &cfg,
            |_| Chatter {
                heard: 0,
                rounds: 0,
            },
            &mut NoFaults,
        );
        assert_eq!(r2.metrics.msgs_lost_edges, lost);
    }

    #[test]
    fn send_cap_limits_per_node_traffic() {
        let n = 16u32;
        let cfg = SimConfig::new(n).seed(5).max_rounds(10).send_cap(7);
        let r = run(
            &cfg,
            |_| Chatter {
                heard: 0,
                rounds: 0,
            },
            &mut NoFaults,
        );
        // Each node wanted 3 broadcasts of 15 = 45 sends; only 7 allowed.
        assert_eq!(r.metrics.msgs_sent, u64::from(n) * 7);
        assert_eq!(r.metrics.msgs_suppressed, u64::from(n) * (45 - 7));
        // Without a cap, nothing is suppressed.
        let free = run(
            &SimConfig::new(n).seed(5).max_rounds(10),
            |_| Chatter {
                heard: 0,
                rounds: 0,
            },
            &mut NoFaults,
        );
        assert_eq!(free.metrics.msgs_suppressed, 0);
    }

    #[test]
    fn max_rounds_formula_is_pinned_at_powers_of_two() {
        // 8·(⌊log₂ n⌋ + 3). Committed lab baselines depend on these exact
        // values; the doc comment promises this formula.
        for (n, want) in [(2u32, 32u32), (16, 56), (256, 88), (1024, 104), (4096, 120)] {
            assert_eq!(SimConfig::new(n).max_rounds, want, "n={n}");
        }
        // Just past a power of two, ⌊log₂ n⌋ steps up.
        assert_eq!(SimConfig::new(17).max_rounds, 8 * (4 + 3));
    }

    #[test]
    fn congest_accounting_is_directed_per_edge() {
        // n=2: the two nodes share one undirected edge and send each other
        // one 64-bit message per round. Directed accounting budgets each
        // direction separately: the per-edge max is 64 bits, not 128, and
        // a 100-bit budget is never violated even though 128 bits crossed
        // the physical link.
        struct Ping;
        impl Protocol for Ping {
            type Msg = u64;
            fn on_start(&mut self, ctx: &mut Ctx<'_, u64>) {
                ctx.send(Port(0), 1);
            }
            fn on_round(&mut self, _: &mut Ctx<'_, u64>, _: &[Incoming<u64>]) {}
            fn is_terminated(&self) -> bool {
                true
            }
        }
        let cfg = SimConfig::new(2).seed(0).max_rounds(3).congest_bits(100);
        let r = run(&cfg, |_| Ping, &mut NoFaults);
        assert_eq!(r.metrics.msgs_sent, 2);
        assert_eq!(r.metrics.max_edge_bits_per_round, 64);
        assert_eq!(r.congest_violations, 0);
        // With a budget below one direction's traffic, *both* directions
        // violate — two directed edges, not one undirected edge.
        let tight = SimConfig::new(2).seed(0).max_rounds(3).congest_bits(32);
        let r = run(&tight, |_| Ping, &mut NoFaults);
        assert_eq!(r.congest_violations, 2);
    }

    #[test]
    fn try_new_rejects_tiny_networks() {
        assert_eq!(
            SimConfig::try_new(1).unwrap_err(),
            ConfigError::NetworkTooSmall { n: 1 }
        );
        assert_eq!(
            SimConfig::try_new(0).unwrap_err(),
            ConfigError::NetworkTooSmall { n: 0 }
        );
        let cfg = SimConfig::try_new(2).unwrap();
        assert_eq!(cfg.n, 2);
        assert!(cfg.validate().is_ok());
        let mut bad = cfg;
        bad.edge_failure_prob = 1.5;
        assert!(matches!(
            bad.validate(),
            Err(ConfigError::EdgeFailureOutOfRange { .. })
        ));
    }

    #[test]
    #[should_panic(expected = "non-faulty")]
    fn crashing_non_faulty_node_panics() {
        struct Evil;
        impl Adversary<u64> for Evil {
            fn faulty_set(&mut self, n: u32, _r: &mut SmallRng) -> FaultySet {
                FaultySet::none(n)
            }
            fn on_round(
                &mut self,
                _v: &AdversaryView<'_, u64>,
                _r: &mut SmallRng,
            ) -> Vec<CrashDirective> {
                vec![CrashDirective {
                    node: NodeId(0),
                    filter: DeliveryFilter::DropAll,
                }]
            }
        }
        let cfg = SimConfig::new(4).seed(0).max_rounds(2);
        let _ = run(
            &cfg,
            |_| Chatter {
                heard: 0,
                rounds: 0,
            },
            &mut Evil,
        );
    }
}
