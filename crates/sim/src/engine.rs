//! The synchronous round engine.
//!
//! [`run`] executes one protocol instance per node for up to
//! [`SimConfig::max_rounds`] rounds under a crash adversary, implementing
//! the model of Section II:
//!
//! 1. every alive node is activated and queues messages on its ports;
//! 2. the adversary, seeing the round's traffic, crashes any subset of the
//!    still-alive *faulty* nodes and filters the crash-round messages of
//!    each (an arbitrary subset may be lost);
//! 3. surviving messages are delivered, to be observed by their receivers
//!    at the next activation. Messages from non-crashing nodes are never
//!    lost; messages to already-crashed nodes vanish (the receiver halted).
//!
//! Executions are deterministic functions of `(SimConfig, seed)`: node
//! randomness, topology wiring, adversary randomness and filter randomness
//! all derive from independent seeded streams.

use std::collections::HashMap;

use rand::rngs::SmallRng;
use rand::SeedableRng;

use crate::adversary::{Adversary, AdversaryView, Envelope, FaultySet};
use crate::ids::{NodeId, Round};
use crate::metrics::{Metrics, RoundMetrics};
use crate::payload::Payload;
use crate::perm::stream_seed;
use crate::ports::PortMap;
use crate::protocol::{Ctx, Incoming, Protocol};
use crate::trace::{Trace, TraceEvent};

/// Salt constants keeping the engine's RNG streams independent.
const SALT_TOPOLOGY: u64 = 0x01;
const SALT_NODES: u64 = 0x02;
const SALT_ADVERSARY: u64 = 0x03;
const SALT_FILTERS: u64 = 0x04;
const SALT_EDGES: u64 = 0x05;

/// Configuration of a single execution.
#[derive(Clone, Debug)]
pub struct SimConfig {
    /// Network size.
    pub n: u32,
    /// Master seed; every random stream of the run derives from it.
    pub seed: u64,
    /// Hard round limit (protocols may quiesce earlier).
    pub max_rounds: u32,
    /// Grant KT1 knowledge (neighbour identities) to protocols.
    pub kt1: bool,
    /// Record a full message [`Trace`] (needed for lower-bound analysis).
    pub record_trace: bool,
    /// If set, count CONGEST violations: rounds in which more than this
    /// many bits crossed a single edge.
    pub congest_bits: Option<u32>,
    /// If set, each node may send at most this many messages over the
    /// whole execution; excess sends are silently suppressed (and counted
    /// in [`Metrics::msgs_suppressed`]). Models the "budgeted algorithm"
    /// of the lower-bound experiments (Theorems 4.2/5.2): an algorithm
    /// that chooses to send at most `n·cap` messages.
    pub send_cap: Option<u32>,
    /// **Extension knob (default 0).** Each undirected edge of the
    /// complete graph is independently *dead* with this probability
    /// (deterministically derived from the seed); messages across dead
    /// edges vanish. This leaves the model of the paper — delivery from
    /// non-crashed nodes is no longer reliable — and is used by
    /// experiment E13 to probe the protocols' robustness towards
    /// incomplete topologies (open question 2).
    pub edge_failure_prob: f64,
}

impl SimConfig {
    /// A default configuration for an `n`-node network: seed 0, a generous
    /// `8·(log₂ n + 2)` round limit, KT0, no tracing.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2`.
    pub fn new(n: u32) -> Self {
        assert!(n >= 2, "a complete network needs at least two nodes");
        let log2n = 32 - n.leading_zeros();
        SimConfig {
            n,
            seed: 0,
            max_rounds: 8 * (log2n + 2),
            kt1: false,
            record_trace: false,
            congest_bits: None,
            send_cap: None,
            edge_failure_prob: 0.0,
        }
    }

    /// Sets the master seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the round limit.
    pub fn max_rounds(mut self, rounds: u32) -> Self {
        self.max_rounds = rounds;
        self
    }

    /// Enables or disables KT1 knowledge.
    pub fn kt1(mut self, kt1: bool) -> Self {
        self.kt1 = kt1;
        self
    }

    /// Enables or disables trace recording.
    pub fn record_trace(mut self, record: bool) -> Self {
        self.record_trace = record;
        self
    }

    /// Sets the CONGEST per-edge-per-round bit budget to check against.
    pub fn congest_bits(mut self, bits: u32) -> Self {
        self.congest_bits = Some(bits);
        self
    }

    /// Caps the number of messages each node may send over the whole
    /// execution (see [`SimConfig::send_cap`]).
    pub fn send_cap(mut self, cap: u32) -> Self {
        self.send_cap = Some(cap);
        self
    }

    /// Kills each undirected edge independently with probability `p`
    /// (see [`SimConfig::edge_failure_prob`]).
    ///
    /// # Panics
    ///
    /// Panics unless `0 ≤ p < 1`.
    pub fn edge_failure_prob(mut self, p: f64) -> Self {
        assert!(
            (0.0..1.0).contains(&p),
            "edge failure prob must be in [0,1)"
        );
        self.edge_failure_prob = p;
        self
    }
}

/// Everything produced by one execution.
#[derive(Debug)]
pub struct RunResult<P> {
    /// Accounting (messages, bits, rounds, congestion, crashes).
    pub metrics: Metrics,
    /// Final protocol state of every node — including nodes that crashed,
    /// whose state is frozen at the crash.
    pub states: Vec<P>,
    /// For each node, the round it crashed in (`None` = survived).
    pub crashed_at: Vec<Option<Round>>,
    /// The faulty set the adversary committed to.
    pub faulty: FaultySet,
    /// The message trace, when recording was enabled.
    pub trace: Option<Trace>,
    /// Rounds in which more than [`SimConfig::congest_bits`] bits crossed
    /// one edge (always 0 when the check is disabled).
    pub congest_violations: u64,
}

impl<P> RunResult<P> {
    /// Network size.
    pub fn n(&self) -> u32 {
        self.states.len() as u32
    }

    /// Whether `node` was still alive at the end of the run.
    pub fn is_alive(&self, node: NodeId) -> bool {
        self.crashed_at[node.index()].is_none()
    }

    /// Iterates over `(id, state)` of the nodes that never crashed.
    pub fn surviving_states(&self) -> impl Iterator<Item = (NodeId, &P)> + '_ {
        self.states
            .iter()
            .enumerate()
            .filter(move |(i, _)| self.crashed_at[*i].is_none())
            .map(|(i, s)| (NodeId(i as u32), s))
    }

    /// Iterates over `(id, state)` of **all** nodes, crashed or not.
    pub fn all_states(&self) -> impl Iterator<Item = (NodeId, &P)> + '_ {
        self.states
            .iter()
            .enumerate()
            .map(|(i, s)| (NodeId(i as u32), s))
    }

    /// Number of surviving (never crashed) nodes.
    pub fn survivor_count(&self) -> usize {
        self.crashed_at.iter().filter(|c| c.is_none()).count()
    }
}

/// Runs one execution of `protocol` under `adversary`.
///
/// `factory` is called once per node, in id order, to build the initial
/// protocol state (closures typically capture the input assignment, e.g.
/// the agreement input bits).
///
/// # Panics
///
/// Panics if the adversary violates the model: crashing a node outside its
/// committed faulty set, or crashing a node twice.
pub fn run<P, F, A>(cfg: &SimConfig, mut factory: F, adversary: &mut A) -> RunResult<P>
where
    P: Protocol,
    F: FnMut(NodeId) -> P,
    A: Adversary<P::Msg> + ?Sized,
{
    let n = cfg.n;
    let nn = n as usize;

    let topology_seed = stream_seed(cfg.seed, SALT_TOPOLOGY);
    let ports: Vec<PortMap> = (0..n)
        .map(|i| PortMap::new(n, NodeId(i), topology_seed))
        .collect();

    let node_seed_base = stream_seed(cfg.seed, SALT_NODES);
    let mut rngs: Vec<SmallRng> = (0..n)
        .map(|i| SmallRng::seed_from_u64(stream_seed(node_seed_base, u64::from(i))))
        .collect();
    let mut adv_rng = SmallRng::seed_from_u64(stream_seed(cfg.seed, SALT_ADVERSARY));
    let mut filter_rng = SmallRng::seed_from_u64(stream_seed(cfg.seed, SALT_FILTERS));

    let mut states: Vec<P> = (0..n).map(|i| factory(NodeId(i))).collect();
    let faulty = adversary.faulty_set(n, &mut adv_rng);
    assert!(
        faulty.iter().all(|id| id.index() < nn),
        "faulty set references nodes outside the network"
    );

    let mut alive = vec![true; nn];
    let mut crashed_at: Vec<Option<Round>> = vec![None; nn];
    let mut metrics = Metrics::new();
    let mut trace = cfg.record_trace.then(|| Trace::new(n));
    let mut congest_violations: u64 = 0;

    let mut inboxes: Vec<Vec<Incoming<P::Msg>>> = vec![Vec::new(); nn];
    let mut next_inboxes: Vec<Vec<Incoming<P::Msg>>> = vec![Vec::new(); nn];
    let mut outgoing: Vec<Vec<Envelope<P::Msg>>> = vec![Vec::new(); nn];
    let mut outbox: Vec<(crate::ids::Port, P::Msg)> = Vec::new();
    let mut sends_used: Vec<u32> = vec![0; nn];

    for round in 0..cfg.max_rounds {
        // --- 1. activation: every alive node runs and queues messages. ---
        for u in 0..nn {
            if !alive[u] {
                continue;
            }
            outbox.clear();
            let mut ctx = Ctx {
                node: NodeId(u as u32),
                n,
                round,
                kt1: cfg.kt1,
                ports: &ports[u],
                rng: &mut rngs[u],
                outbox: &mut outbox,
            };
            if round == 0 {
                states[u].on_start(&mut ctx);
            } else {
                states[u].on_round(&mut ctx, &inboxes[u]);
            }
            // Enforce the per-node send budget, if any: keep only the
            // first `remaining` queued messages of this activation.
            if let Some(cap) = cfg.send_cap {
                let remaining = cap.saturating_sub(sends_used[u]) as usize;
                if outbox.len() > remaining {
                    metrics.msgs_suppressed += (outbox.len() - remaining) as u64;
                    outbox.truncate(remaining);
                }
                sends_used[u] += outbox.len() as u32;
            }
            let src = NodeId(u as u32);
            for (port, msg) in outbox.drain(..) {
                let dst = ports[u].peer(port);
                let dst_port = ports[dst.index()].port_to(src);
                outgoing[u].push(Envelope {
                    src,
                    dst,
                    dst_port,
                    msg,
                });
            }
            inboxes[u].clear();
        }

        // --- 2a. Byzantine tampering (extension; no-op for crash-only
        // adversaries). Forged sends replace the node's honest output.
        let tampers = {
            let view = AdversaryView {
                round,
                n,
                faulty: &faulty,
                alive: &alive,
                outgoing: &outgoing,
            };
            adversary.tamper(&view, &mut adv_rng)
        };
        for t in tampers {
            let i = t.node.index();
            assert!(
                faulty.contains(t.node),
                "adversary tampered with non-faulty node {}",
                t.node
            );
            assert!(alive[i], "adversary tampered with crashed node {}", t.node);
            outgoing[i] = t
                .sends
                .into_iter()
                .map(|(dst, msg)| {
                    assert!(dst.0 < n, "forged message to node outside network");
                    assert_ne!(dst, t.node, "forged message to self");
                    Envelope {
                        src: t.node,
                        dst,
                        dst_port: ports[dst.index()].port_to(t.node),
                        msg,
                    }
                })
                .collect();
        }

        // --- 2b. adversary: crash directives for this round. ---
        let directives = {
            let view = AdversaryView {
                round,
                n,
                faulty: &faulty,
                alive: &alive,
                outgoing: &outgoing,
            };
            adversary.on_round(&view, &mut adv_rng)
        };

        let mut crashes_this_round = 0u32;
        let mut sent: u64 = 0;
        let mut bits_sent: u64 = 0;
        for node_out in outgoing.iter() {
            sent += node_out.len() as u64;
            bits_sent += node_out
                .iter()
                .map(|e| u64::from(e.msg.size_bits()))
                .sum::<u64>();
        }

        // Record every *sent* message in the trace before filtering, so the
        // communication graph also knows about suppressed sends.
        if let Some(tr) = trace.as_mut() {
            for e in outgoing.iter().flatten() {
                tr.push(TraceEvent {
                    round,
                    src: e.src,
                    dst: e.dst,
                    delivered: true, // patched below if suppressed / dst dead
                    bits: e.msg.size_bits(),
                });
            }
        }
        for d in directives {
            let i = d.node.index();
            assert!(
                faulty.contains(d.node),
                "adversary crashed non-faulty node {}",
                d.node
            );
            assert!(alive[i], "adversary crashed {} twice", d.node);
            alive[i] = false;
            crashed_at[i] = Some(round);
            metrics.record_crash(d.node, round);
            crashes_this_round += 1;

            if let Some(tr) = trace.as_mut() {
                // Trace events were recorded optimistically; re-record the
                // suppressed ones is complex, so instead rebuild: mark which
                // of this node's sends survive by index.
                let before: Vec<Envelope<P::Msg>> = outgoing[i].clone();
                let mut kept = before.clone();
                d.filter.apply(&mut kept, &mut filter_rng);
                // Mark dropped ones in the trace (events of this round from
                // this src). Match by (dst, position) multiset.
                let mut kept_dsts: Vec<NodeId> = kept.iter().map(|e| e.dst).collect();
                patch_trace_round(tr, round, d.node, &before, &mut kept_dsts);
                outgoing[i] = kept;
            } else {
                d.filter.apply(&mut outgoing[i], &mut filter_rng);
            }
        }

        // --- 3. delivery + accounting. ---
        let mut delivered: u64 = 0;
        let mut edge_bits: HashMap<(u32, u32), u64> = HashMap::new();
        let edge_seed = stream_seed(cfg.seed, SALT_EDGES);
        let edge_dead = |a: NodeId, b: NodeId| -> bool {
            if cfg.edge_failure_prob <= 0.0 {
                return false;
            }
            let key = (u64::from(a.0.min(b.0)) << 32) | u64::from(a.0.max(b.0));
            let h = stream_seed(edge_seed, key);
            (h as f64 / u64::MAX as f64) < cfg.edge_failure_prob
        };
        for node_out in outgoing.iter_mut() {
            for e in node_out.drain(..) {
                let bits = u64::from(e.msg.size_bits());
                *edge_bits.entry((e.src.0, e.dst.0)).or_insert(0) += bits;
                if edge_dead(e.src, e.dst) {
                    metrics.msgs_lost_edges += 1;
                    if let Some(tr) = trace.as_mut() {
                        mark_undelivered(tr, round, e.src, e.dst);
                    }
                } else if alive[e.dst.index()] {
                    delivered += 1;
                    next_inboxes[e.dst.index()].push(Incoming {
                        port: e.dst_port,
                        msg: e.msg,
                    });
                } else if let Some(tr) = trace.as_mut() {
                    mark_undelivered(tr, round, e.src, e.dst);
                }
            }
        }
        let round_max_edge = edge_bits.values().copied().max().unwrap_or(0);
        metrics.record_edge_bits(round_max_edge);
        if let Some(budget) = cfg.congest_bits {
            congest_violations += edge_bits
                .values()
                .filter(|&&b| b > u64::from(budget))
                .count() as u64;
        }

        metrics.record_round(RoundMetrics {
            sent,
            delivered,
            bits_sent,
            crashes: crashes_this_round,
        });

        std::mem::swap(&mut inboxes, &mut next_inboxes);
        for ib in next_inboxes.iter_mut() {
            ib.clear();
        }

        // --- 4. early quiescence. ---
        if delivered == 0 {
            let all_done = (0..nn)
                .filter(|&u| alive[u])
                .all(|u| states[u].is_terminated());
            if all_done {
                break;
            }
        }
    }

    RunResult {
        metrics,
        states,
        crashed_at,
        faulty,
        trace,
        congest_violations,
    }
}

/// Marks as undelivered the trace events of `round` from `src` whose
/// destination does not appear in `kept_dsts` (multiset semantics).
fn patch_trace_round<M>(
    tr: &mut Trace,
    round: Round,
    src: NodeId,
    before: &[Envelope<M>],
    kept_dsts: &mut Vec<NodeId>,
) {
    // Figure out which destinations were dropped.
    let mut dropped: Vec<NodeId> = Vec::new();
    for e in before {
        if let Some(pos) = kept_dsts.iter().position(|&d| d == e.dst) {
            kept_dsts.swap_remove(pos);
        } else {
            dropped.push(e.dst);
        }
    }
    if dropped.is_empty() {
        return;
    }
    // Patch matching events from the back (this round's events are at the
    // tail of the trace).
    let events = tr.events_mut();
    for ev in events.iter_mut().rev() {
        if ev.round != round {
            break;
        }
        if ev.src == src && ev.delivered {
            if let Some(pos) = dropped.iter().position(|&d| d == ev.dst) {
                ev.delivered = false;
                dropped.swap_remove(pos);
                if dropped.is_empty() {
                    return;
                }
            }
        }
    }
}

/// Marks one trace event of `round` `src → dst` as undelivered (receiver
/// already crashed).
fn mark_undelivered(tr: &mut Trace, round: Round, src: NodeId, dst: NodeId) {
    for ev in tr.events_mut().iter_mut().rev() {
        if ev.round != round {
            break;
        }
        if ev.src == src && ev.dst == dst && ev.delivered {
            ev.delivered = false;
            return;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adversary::{DeliveryFilter, EagerCrash, FaultPlan, NoFaults, ScriptedCrash};
    use crate::ids::Port;

    /// Each node broadcasts its round number as `u64` for 3 rounds and
    /// counts what it hears.
    struct Chatter {
        heard: u64,
        rounds: u32,
    }

    impl Protocol for Chatter {
        type Msg = u64;
        fn on_start(&mut self, ctx: &mut Ctx<'_, u64>) {
            ctx.broadcast(0);
        }
        fn on_round(&mut self, ctx: &mut Ctx<'_, u64>, inbox: &[Incoming<u64>]) {
            self.heard += inbox.len() as u64;
            self.rounds += 1;
            if self.rounds < 3 {
                ctx.broadcast(u64::from(ctx.round()));
            }
        }
        fn is_terminated(&self) -> bool {
            self.rounds >= 3
        }
    }

    #[test]
    fn fault_free_broadcast_counts_add_up() {
        let n = 16u32;
        let cfg = SimConfig::new(n).seed(5).max_rounds(10);
        let r = run(
            &cfg,
            |_| Chatter {
                heard: 0,
                rounds: 0,
            },
            &mut NoFaults,
        );
        // 3 broadcast rounds of n*(n-1) messages each.
        let per_round = u64::from(n) * u64::from(n - 1);
        assert_eq!(r.metrics.msgs_sent, 3 * per_round);
        assert_eq!(r.metrics.msgs_delivered, 3 * per_round);
        let total_heard: u64 = r.states.iter().map(|s| s.heard).sum();
        assert_eq!(total_heard, 3 * per_round);
        // Early quiescence: 3 send rounds + 1 drain round.
        assert!(r.metrics.rounds <= 5);
        assert_eq!(r.congest_violations, 0);
    }

    #[test]
    fn eager_crash_silences_faulty_nodes() {
        let n = 16u32;
        let cfg = SimConfig::new(n).seed(5).max_rounds(10);
        let mut adv = EagerCrash::new(4);
        let r = run(
            &cfg,
            |_| Chatter {
                heard: 0,
                rounds: 0,
            },
            &mut adv,
        );
        assert_eq!(r.survivor_count(), 12);
        assert_eq!(r.metrics.crash_count(), 4);
        // Crashed-at-0 nodes broadcast then had everything dropped:
        // delivered = sent - dropped_by_crash - sent_to_dead.
        assert!(r.metrics.msgs_delivered < r.metrics.msgs_sent);
        for (id, _) in r.surviving_states() {
            assert!(!r.faulty.contains(id) || r.is_alive(id));
        }
    }

    #[test]
    fn scripted_crash_freezes_state_at_crash_round() {
        let n = 8u32;
        let plan = FaultPlan::new().crash(NodeId(3), 1, DeliveryFilter::DropAll);
        let cfg = SimConfig::new(n).seed(1).max_rounds(10);
        let mut adv = ScriptedCrash::new(plan);
        let r = run(
            &cfg,
            |_| Chatter {
                heard: 0,
                rounds: 0,
            },
            &mut adv,
        );
        assert_eq!(r.crashed_at[3], Some(1));
        // Node 3 executed rounds 0 and 1 (its crash round) only.
        assert_eq!(r.states[3].rounds, 1);
        assert_eq!(r.survivor_count(), 7);
    }

    #[test]
    fn deterministic_replay() {
        let cfg = SimConfig::new(32).seed(99).max_rounds(10);
        let mut adv1 = EagerCrash::new(8);
        let mut adv2 = EagerCrash::new(8);
        let r1 = run(
            &cfg,
            |_| Chatter {
                heard: 0,
                rounds: 0,
            },
            &mut adv1,
        );
        let r2 = run(
            &cfg,
            |_| Chatter {
                heard: 0,
                rounds: 0,
            },
            &mut adv2,
        );
        assert_eq!(r1.metrics.msgs_sent, r2.metrics.msgs_sent);
        assert_eq!(r1.metrics.msgs_delivered, r2.metrics.msgs_delivered);
        assert_eq!(r1.crashed_at, r2.crashed_at);
        let h1: Vec<u64> = r1.states.iter().map(|s| s.heard).collect();
        let h2: Vec<u64> = r2.states.iter().map(|s| s.heard).collect();
        assert_eq!(h1, h2);
    }

    #[test]
    fn congest_accounting_flags_oversized_edges() {
        struct Fat;
        impl Protocol for Fat {
            type Msg = u64;
            fn on_start(&mut self, ctx: &mut Ctx<'_, u64>) {
                // 3 messages of 64 bits on the same edge in one round.
                ctx.send(Port(0), 1);
                ctx.send(Port(0), 2);
                ctx.send(Port(0), 3);
            }
            fn on_round(&mut self, _: &mut Ctx<'_, u64>, _: &[Incoming<u64>]) {}
            fn is_terminated(&self) -> bool {
                true
            }
        }
        let cfg = SimConfig::new(4).seed(0).max_rounds(3).congest_bits(64);
        let r = run(&cfg, |_| Fat, &mut NoFaults);
        assert_eq!(r.metrics.max_edge_bits_per_round, 192);
        assert_eq!(r.congest_violations, 4); // each of the 4 nodes overloads one edge
    }

    #[test]
    fn trace_records_sends_and_suppressions() {
        let n = 8u32;
        let plan = FaultPlan::new().crash(NodeId(0), 0, DeliveryFilter::KeepFirst(2));
        let cfg = SimConfig::new(n).seed(3).max_rounds(6).record_trace(true);
        let mut adv = ScriptedCrash::new(plan);
        let r = run(
            &cfg,
            |_| Chatter {
                heard: 0,
                rounds: 0,
            },
            &mut adv,
        );
        let tr = r.trace.expect("trace enabled");
        let from0: Vec<_> = tr
            .events()
            .iter()
            .filter(|e| e.src == NodeId(0) && e.round == 0)
            .collect();
        assert_eq!(from0.len(), (n - 1) as usize);
        assert_eq!(from0.iter().filter(|e| e.delivered).count(), 2);
        // Messages *to* node 0 after its crash are marked undelivered.
        assert!(tr
            .events()
            .iter()
            .filter(|e| e.dst == NodeId(0) && e.round >= 1)
            .all(|e| !e.delivered));
    }

    #[test]
    fn edge_failures_drop_a_matching_fraction() {
        let n = 64u32;
        let cfg = SimConfig::new(n)
            .seed(9)
            .max_rounds(10)
            .edge_failure_prob(0.25);
        let r = run(
            &cfg,
            |_| Chatter {
                heard: 0,
                rounds: 0,
            },
            &mut NoFaults,
        );
        let total = r.metrics.msgs_sent;
        let lost = r.metrics.msgs_lost_edges;
        let frac = lost as f64 / total as f64;
        assert!((frac - 0.25).abs() < 0.06, "lost fraction {frac}");
        // Determinism: the same edge is dead in both directions and in
        // every round, so re-running gives identical losses.
        let r2 = run(
            &cfg,
            |_| Chatter {
                heard: 0,
                rounds: 0,
            },
            &mut NoFaults,
        );
        assert_eq!(r2.metrics.msgs_lost_edges, lost);
    }

    #[test]
    fn send_cap_limits_per_node_traffic() {
        let n = 16u32;
        let cfg = SimConfig::new(n).seed(5).max_rounds(10).send_cap(7);
        let r = run(
            &cfg,
            |_| Chatter {
                heard: 0,
                rounds: 0,
            },
            &mut NoFaults,
        );
        // Each node wanted 3 broadcasts of 15 = 45 sends; only 7 allowed.
        assert_eq!(r.metrics.msgs_sent, u64::from(n) * 7);
        assert_eq!(r.metrics.msgs_suppressed, u64::from(n) * (45 - 7));
        // Without a cap, nothing is suppressed.
        let free = run(
            &SimConfig::new(n).seed(5).max_rounds(10),
            |_| Chatter {
                heard: 0,
                rounds: 0,
            },
            &mut NoFaults,
        );
        assert_eq!(free.metrics.msgs_suppressed, 0);
    }

    #[test]
    #[should_panic(expected = "non-faulty")]
    fn crashing_non_faulty_node_panics() {
        struct Evil;
        impl Adversary<u64> for Evil {
            fn faulty_set(&mut self, n: u32, _r: &mut SmallRng) -> FaultySet {
                FaultySet::none(n)
            }
            fn on_round(
                &mut self,
                _v: &AdversaryView<'_, u64>,
                _r: &mut SmallRng,
            ) -> Vec<crate::adversary::CrashDirective> {
                vec![crate::adversary::CrashDirective {
                    node: NodeId(0),
                    filter: DeliveryFilter::DropAll,
                }]
            }
        }
        let cfg = SimConfig::new(4).seed(0).max_rounds(2);
        let _ = run(
            &cfg,
            |_| Chatter {
                heard: 0,
                rounds: 0,
            },
            &mut Evil,
        );
    }
}
