//! The protocol interface: what a node may observe and do each round.
//!
//! A protocol is a per-node state machine driven by the engine. In every
//! synchronous round each *alive* node is activated once with the messages
//! delivered to it at the end of the previous round, and may send messages
//! through its ports; those messages are delivered (subject to crashes) at
//! the start of the next round. This matches the synchronous message-passing
//! model of Section II of the paper.

use rand::prelude::*;
use rand::rngs::SmallRng;

use crate::ids::{NodeId, Port, Round};
use crate::payload::Payload;
use crate::ports::PortMap;

/// A message delivered to a node, tagged with the local port it arrived on.
///
/// Replying on `port` reaches the sender — the only form of addressing a
/// KT0 protocol has for nodes it did not sample itself.
#[derive(Clone, Debug)]
pub struct Incoming<M> {
    /// The local port the message arrived through.
    pub port: Port,
    /// The message payload.
    pub msg: M,
}

/// Per-activation view of the world handed to a protocol.
///
/// `Ctx` exposes exactly the knowledge the model grants a node: the network
/// size `n`, the current round, its private randomness, and its ports. The
/// node's global [`NodeId`] and the port→peer mapping are additionally
/// exposed for **KT1** protocols and for debugging/analysis; KT0 protocols
/// (all protocols of the paper) must not use them for decisions, and the
/// engine will panic on [`Ctx::peer_of`]/[`Ctx::port_to`] unless the
/// simulation was configured with `kt1(true)`.
pub struct Ctx<'a, M> {
    pub(crate) node: NodeId,
    pub(crate) n: u32,
    pub(crate) round: Round,
    pub(crate) kt1: bool,
    pub(crate) ports: &'a PortMap,
    pub(crate) rng: &'a mut SmallRng,
    pub(crate) outbox: &'a mut Vec<(Port, M)>,
}

impl<'a, M: Payload> Ctx<'a, M> {
    /// Total number of nodes in the network (known to all nodes).
    pub fn n(&self) -> u32 {
        self.n
    }

    /// Number of local ports — this node's degree (`n - 1` on the
    /// complete graph).
    pub fn port_count(&self) -> u32 {
        self.ports.port_count()
    }

    /// The current round, starting from `0` (the `on_start` round).
    pub fn round(&self) -> Round {
        self.round
    }

    /// This node's global simulator identity.
    ///
    /// Anonymous-network (KT0) protocols must not use this for protocol
    /// decisions; it exists for KT1 baselines, logging and tests.
    pub fn node_id(&self) -> NodeId {
        self.node
    }

    /// Whether the simulation grants KT1 knowledge (neighbour identities).
    pub fn is_kt1(&self) -> bool {
        self.kt1
    }

    /// The neighbour behind `port`.
    ///
    /// # Panics
    ///
    /// Panics unless the simulation was configured as KT1 — in KT0 a node
    /// does not know its neighbours (Section II).
    pub fn peer_of(&self, port: Port) -> NodeId {
        assert!(self.kt1, "peer_of requires the KT1 model");
        self.ports.peer(port)
    }

    /// The local port leading to `peer`.
    ///
    /// # Panics
    ///
    /// Panics unless the simulation was configured as KT1, or if
    /// `peer == self.node_id()`.
    pub fn port_to(&self, peer: NodeId) -> Port {
        assert!(self.kt1, "port_to requires the KT1 model");
        self.ports.port_to(peer)
    }

    /// This node's private random generator (deterministic per seed).
    pub fn rng(&mut self) -> &mut SmallRng {
        self.rng
    }

    /// Queues `msg` for delivery through `port` at the end of this round.
    ///
    /// # Panics
    ///
    /// Panics if `port` is out of range.
    pub fn send(&mut self, port: Port, msg: M) {
        assert!(port.0 < self.ports.port_count(), "port {port} out of range");
        self.outbox.push((port, msg));
    }

    /// Sends `msg` to every port (a full local broadcast — one message
    /// per neighbour, `n-1` on the complete graph).
    pub fn broadcast(&mut self, msg: M) {
        for p in 0..self.ports.port_count() {
            self.outbox.push((Port(p), msg.clone()));
        }
    }

    /// A uniformly random port — a uniformly random *neighbour*, which on
    /// the complete graph is a uniformly random other node (how the
    /// paper's protocols sample referees).
    pub fn random_port(&mut self) -> Port {
        Port(self.rng.random_range(0..self.ports.port_count()))
    }

    /// Samples `min(k, port_count)` distinct ports uniformly at random
    /// (without replacement).
    ///
    /// `k` is clamped to the node's degree so protocols written for the
    /// complete graph (e.g. referee counts in `Θ(√(n log n))`) degrade
    /// gracefully on sparse topologies instead of panicking.
    pub fn sample_ports(&mut self, k: usize) -> Vec<Port> {
        let count = self.ports.port_count() as usize;
        rand::seq::index::sample(self.rng, count, k.min(count))
            .into_iter()
            .map(|i| Port(i as u32))
            .collect()
    }
}

/// A per-node protocol state machine.
///
/// Implementations are constructed by a factory closure passed to
/// [`crate::engine::run`], one instance per node, and after the run the
/// final states are returned in
/// [`crate::engine::RunResult::states`] for outcome extraction.
pub trait Protocol: Sized + Send {
    /// The message type this protocol exchanges.
    type Msg: Payload;

    /// Round 0 activation: no messages have been delivered yet. Messages
    /// sent here are delivered at the start of round 1.
    fn on_start(&mut self, ctx: &mut Ctx<'_, Self::Msg>);

    /// Round `r ≥ 1` activation with the messages delivered this round
    /// (i.e. sent in round `r-1` and not suppressed by a crash).
    fn on_round(&mut self, ctx: &mut Ctx<'_, Self::Msg>, inbox: &[Incoming<Self::Msg>]);

    /// Quiescence hint: once *every alive node* reports `true` and no
    /// messages are in flight, the engine stops early. Purely an
    /// optimisation — protocols must also be correct if run to `max_rounds`.
    fn is_terminated(&self) -> bool {
        false
    }

    /// Sparse-activation hint: `true` promises that activating this node
    /// with an **empty inbox** is a no-op — no sends, no RNG draws, no
    /// state change, and `is_terminated`/`is_inert` unchanged — so the
    /// engine may skip the activation entirely.
    ///
    /// This is what lets a round cost `O(messages + acting nodes)` instead
    /// of `O(n)`: nodes that are merely waiting drop out of the engine's
    /// agenda until a message arrives. The default is `false` (never skip),
    /// which is always correct; a protocol that counts rounds, times out,
    /// or draws randomness while idle must keep the default. Returning
    /// `true` while violating the promise breaks bit-exact equivalence
    /// between sparse and dense drivers (the `naive` oracle tests and the
    /// `ftc-net` substrate both activate every alive node every round).
    fn is_inert(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::perm::stream_seed;

    fn mk_ctx<'a>(
        ports: &'a PortMap,
        rng: &'a mut SmallRng,
        outbox: &'a mut Vec<(Port, bool)>,
        kt1: bool,
    ) -> Ctx<'a, bool> {
        Ctx {
            node: NodeId(0),
            n: 16,
            round: 0,
            kt1,
            ports,
            rng,
            outbox,
        }
    }

    #[test]
    fn send_and_broadcast_fill_outbox() {
        let ports = PortMap::new(16, NodeId(0), 1);
        let mut rng = SmallRng::seed_from_u64(stream_seed(0, 0));
        let mut outbox = Vec::new();
        let mut ctx = mk_ctx(&ports, &mut rng, &mut outbox, false);
        ctx.send(Port(3), true);
        ctx.broadcast(false);
        assert_eq!(outbox.len(), 16);
        assert_eq!(outbox[0], (Port(3), true));
    }

    #[test]
    fn sample_ports_is_distinct_and_in_range() {
        let ports = PortMap::new(16, NodeId(0), 1);
        let mut rng = SmallRng::seed_from_u64(9);
        let mut outbox = Vec::new();
        let mut ctx = mk_ctx(&ports, &mut rng, &mut outbox, false);
        let s = ctx.sample_ports(15);
        let mut sorted: Vec<u32> = s.iter().map(|p| p.0).collect();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..15).collect::<Vec<_>>());
    }

    #[test]
    #[should_panic(expected = "KT1")]
    fn kt0_denies_peer_lookup() {
        let ports = PortMap::new(16, NodeId(0), 1);
        let mut rng = SmallRng::seed_from_u64(9);
        let mut outbox = Vec::new();
        let ctx = mk_ctx(&ports, &mut rng, &mut outbox, false);
        let _ = ctx.peer_of(Port(0));
    }

    #[test]
    fn kt1_allows_peer_lookup() {
        let ports = PortMap::new(16, NodeId(0), 1);
        let mut rng = SmallRng::seed_from_u64(9);
        let mut outbox = Vec::new();
        let ctx = mk_ctx(&ports, &mut rng, &mut outbox, true);
        let peer = ctx.peer_of(Port(0));
        assert_eq!(ctx.port_to(peer), Port(0));
    }
}
