//! Parallel multi-trial execution.
//!
//! The paper's guarantees are probabilistic ("with high probability", "with
//! probability ≥ α"), so every experiment runs many independent seeded
//! trials. [`run_trials`] fans trials out over all cores with deterministic
//! per-trial seeds, so a whole experiment is reproducible from one base
//! seed.

use parking_lot::Mutex;

use crate::engine::SimConfig;
use crate::perm::stream_seed;

/// Result of one trial, tagged with its index and derived seed.
#[derive(Clone, Debug)]
pub struct TrialOutcome<T> {
    /// Trial index in `0..trials`.
    pub trial: u64,
    /// The seed the trial ran with.
    pub seed: u64,
    /// Whatever the job extracted from the run.
    pub value: T,
}

/// Runs `job` for `trials` independent seeds derived from `base_seed`,
/// in parallel, returning outcomes sorted by trial index.
///
/// `job(trial, seed)` should construct its own protocol/adversary state —
/// everything it needs to be an independent experiment.
pub fn run_trials_with<T, F>(trials: u64, base_seed: u64, job: F) -> Vec<TrialOutcome<T>>
where
    T: Send,
    F: Fn(u64, u64) -> T + Sync,
{
    let results: Mutex<Vec<TrialOutcome<T>>> = Mutex::new(Vec::with_capacity(trials as usize));
    let threads = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1)
        .min(trials.max(1) as usize);
    let next = std::sync::atomic::AtomicU64::new(0);

    crossbeam::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|_| loop {
                let trial = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if trial >= trials {
                    break;
                }
                let seed = stream_seed(base_seed, trial.wrapping_add(1));
                let value = job(trial, seed);
                results.lock().push(TrialOutcome { trial, seed, value });
            });
        }
    })
    .expect("trial worker panicked");

    let mut out = results.into_inner();
    out.sort_by_key(|t| t.trial);
    out
}

/// Convenience wrapper: runs `job` once per trial with a copy of `cfg`
/// whose seed is the derived per-trial seed.
pub fn run_trials<T, F>(cfg: &SimConfig, trials: u64, job: F) -> Vec<TrialOutcome<T>>
where
    T: Send,
    F: Fn(&SimConfig) -> T + Sync,
{
    run_trials_with(trials, cfg.seed, |_, seed| {
        let mut c = cfg.clone();
        c.seed = seed;
        job(&c)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trials_are_ordered_and_seeded_distinctly() {
        let out = run_trials_with(32, 7, |trial, seed| (trial, seed));
        assert_eq!(out.len(), 32);
        for (i, t) in out.iter().enumerate() {
            assert_eq!(t.trial, i as u64);
            assert_eq!(t.value.0, i as u64);
        }
        let mut seeds: Vec<u64> = out.iter().map(|t| t.seed).collect();
        seeds.sort_unstable();
        seeds.dedup();
        assert_eq!(seeds.len(), 32, "per-trial seeds must be distinct");
    }

    #[test]
    fn reproducible_across_invocations() {
        let a = run_trials_with(8, 42, |_, seed| seed);
        let b = run_trials_with(8, 42, |_, seed| seed);
        assert_eq!(
            a.iter().map(|t| t.value).collect::<Vec<_>>(),
            b.iter().map(|t| t.value).collect::<Vec<_>>()
        );
    }

    #[test]
    fn cfg_wrapper_varies_seed_only() {
        let cfg = SimConfig::new(8).seed(5).max_rounds(3);
        let out = run_trials(&cfg, 4, |c| (c.n, c.max_rounds, c.seed));
        assert!(out.iter().all(|t| t.value.0 == 8 && t.value.1 == 3));
        assert!(out.windows(2).all(|w| w[0].value.2 != w[1].value.2));
    }

    #[test]
    fn zero_trials_is_empty() {
        let out = run_trials_with(0, 1, |_, _| ());
        assert!(out.is_empty());
    }
}
