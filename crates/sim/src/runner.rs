//! Deterministic parallel multi-trial execution.
//!
//! The paper's guarantees are probabilistic ("with high probability", "with
//! probability ≥ α"), so every experiment is a Monte-Carlo estimate over
//! many independent `(SimConfig, seed)` executions. [`ParRunner`] fans those
//! trials out over a crossbeam scoped worker pool while keeping the results
//! **bit-identical to sequential execution at any thread count**:
//!
//! * each trial's randomness derives solely from its own
//!   `stream_seed(base_seed, trial_index + 1)` — trials share no mutable
//!   state, so scheduling cannot perturb them;
//! * outcomes are reordered by trial index before they are returned;
//! * the early-stop rule (below) is a function of the *trial-index prefix*,
//!   never of completion order.
//!
//! ## Early stopping
//!
//! [`TrialPlan::stop_when`] installs a Wilson-interval criterion on the
//! per-trial success indicator: the batch stops at the smallest trial count
//! `k ≥ min_trials` whose first `k` trials (by index) give a 95% confidence
//! interval on the success probability no wider than the requested
//! half-width. Workers race ahead of that prefix, so a parallel run may
//! *execute* more trials than a sequential one — but every executed trial
//! beyond the deterministic stopping point is discarded, so the *returned*
//! batch is identical at any thread count.
//!
//! ## Timeouts and aborts
//!
//! [`TrialPlan::timeout`] stamps trials whose wall-clock time exceeded the
//! budget ([`TrialOutcome::timed_out`]) — diagnostic only, never part of
//! the deterministic payload. [`AbortHandle`] cancels the not-yet-started
//! remainder of a batch from another thread (e.g. a signal handler).

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::Mutex;

use crate::engine::SimConfig;
use crate::perm::stream_seed;
use crate::stats::wilson_interval;

/// Result of one trial, tagged with its index and derived seed.
#[derive(Clone, Debug)]
pub struct TrialOutcome<T> {
    /// Trial index in `0..trials`.
    pub trial: u64,
    /// The seed the trial ran with.
    pub seed: u64,
    /// Whatever the job extracted from the run.
    pub value: T,
    /// Wall-clock duration of the trial (diagnostic; varies run to run).
    pub duration: Duration,
    /// Whether the trial exceeded [`TrialPlan::timeout`] (diagnostic).
    pub timed_out: bool,
}

/// Early-stop criterion: stop once the 95% Wilson interval on the success
/// probability is narrow enough.
#[derive(Clone, Copy, Debug)]
pub struct StopWhenTight {
    /// Never stop before this many trials.
    pub min_trials: u64,
    /// Stop at the first prefix whose interval half-width is ≤ this.
    pub half_width: f64,
}

/// A declarative description of a Monte-Carlo batch.
#[derive(Clone, Debug)]
pub struct TrialPlan {
    /// Base seed; trial `i` runs with `stream_seed(base_seed, first + i + 1)`.
    pub base_seed: u64,
    /// Index of the first trial (seed-range support: a plan with
    /// `first = 1000` continues exactly where a `first = 0, trials = 1000`
    /// plan stopped).
    pub first: u64,
    /// Number of trials (the maximum, when early stopping is configured).
    pub trials: u64,
    /// Worker threads; `0` means one per available core.
    pub jobs: usize,
    /// Optional early-stop criterion (applies to `run_until`).
    pub stop: Option<StopWhenTight>,
    /// Optional per-trial wall-clock budget; exceeding it flags the
    /// outcome, it does not kill the trial (trials are pure functions and
    /// cannot be safely interrupted mid-round).
    pub timeout: Option<Duration>,
}

impl TrialPlan {
    /// A plan of `trials` trials from `base_seed`, all cores, no early
    /// stop, no timeout.
    pub fn new(base_seed: u64, trials: u64) -> Self {
        TrialPlan {
            base_seed,
            first: 0,
            trials,
            jobs: 0,
            stop: None,
            timeout: None,
        }
    }

    /// Starts the seed range at trial index `first` instead of 0.
    pub fn first(mut self, first: u64) -> Self {
        self.first = first;
        self
    }

    /// Sets the worker count (`0` = one per core).
    pub fn jobs(mut self, jobs: usize) -> Self {
        self.jobs = jobs;
        self
    }

    /// Installs the Wilson-interval early-stop criterion.
    pub fn stop_when(mut self, min_trials: u64, half_width: f64) -> Self {
        self.stop = Some(StopWhenTight {
            min_trials,
            half_width,
        });
        self
    }

    /// Sets the per-trial wall-clock budget.
    pub fn timeout(mut self, timeout: Duration) -> Self {
        self.timeout = Some(timeout);
        self
    }

    /// The seed trial `i` (relative to `first`) runs with.
    ///
    /// `+ 1` keeps trial seeds disjoint from the salted engine streams of
    /// `base_seed` itself, so a trial never replays the base config's own
    /// execution.
    pub fn seed_of(&self, i: u64) -> u64 {
        stream_seed(self.base_seed, self.first.wrapping_add(i).wrapping_add(1))
    }

    fn effective_jobs(&self) -> usize {
        let j = if self.jobs == 0 {
            std::thread::available_parallelism()
                .map(|p| p.get())
                .unwrap_or(1)
        } else {
            self.jobs
        };
        j.min(self.trials.max(1) as usize).max(1)
    }
}

/// Cooperative cancellation for a running batch. Cloneable and sharable;
/// aborting skips every trial that has not yet started.
#[derive(Clone, Debug, Default)]
pub struct AbortHandle {
    flag: Arc<AtomicBool>,
}

impl AbortHandle {
    /// A fresh, un-aborted handle.
    pub fn new() -> Self {
        AbortHandle::default()
    }

    /// Requests cancellation of the remaining trials.
    pub fn abort(&self) {
        self.flag.store(true, Ordering::Relaxed);
    }

    /// Whether cancellation has been requested.
    pub fn is_aborted(&self) -> bool {
        self.flag.load(Ordering::Relaxed)
    }
}

/// Everything a batch produced, plus execution diagnostics.
#[derive(Clone, Debug)]
pub struct TrialBatch<T> {
    /// Outcomes sorted by trial index. With early stopping this is exactly
    /// the deterministic prefix `0..stopped_at`.
    pub outcomes: Vec<TrialOutcome<T>>,
    /// Trials actually executed (≥ `outcomes.len()` under early stopping:
    /// workers race past the stopping point and the surplus is discarded).
    pub executed: u64,
    /// Trials flagged as over the per-trial timeout.
    pub timed_out: u64,
    /// Whether the batch was cut short by an [`AbortHandle`].
    pub aborted: bool,
    /// Wall-clock time for the whole batch.
    pub elapsed: Duration,
}

impl<T> TrialBatch<T> {
    /// Number of kept trials.
    pub fn len(&self) -> usize {
        self.outcomes.len()
    }

    /// Whether the batch kept no trials.
    pub fn is_empty(&self) -> bool {
        self.outcomes.is_empty()
    }

    /// Iterates over the kept per-trial values in trial order.
    pub fn values(&self) -> impl Iterator<Item = &T> + '_ {
        self.outcomes.iter().map(|o| &o.value)
    }
}

/// The parallel Monte-Carlo trial runner.
///
/// ```
/// use ftc_sim::runner::{ParRunner, TrialPlan};
///
/// // 64 trials over all cores; value = trial seed parity.
/// let batch = ParRunner::new(TrialPlan::new(7, 64)).run(|_trial, seed| seed % 2);
/// assert_eq!(batch.len(), 64);
/// // Identical to a single-threaded run, bit for bit:
/// let seq = ParRunner::new(TrialPlan::new(7, 64).jobs(1)).run(|_trial, seed| seed % 2);
/// assert_eq!(
///     batch.outcomes.iter().map(|o| o.value).collect::<Vec<_>>(),
///     seq.outcomes.iter().map(|o| o.value).collect::<Vec<_>>(),
/// );
/// ```
#[derive(Clone, Debug)]
pub struct ParRunner {
    plan: TrialPlan,
    abort: AbortHandle,
}

impl ParRunner {
    /// A runner executing `plan`.
    pub fn new(plan: TrialPlan) -> Self {
        ParRunner {
            plan,
            abort: AbortHandle::new(),
        }
    }

    /// The plan this runner executes.
    pub fn plan(&self) -> &TrialPlan {
        &self.plan
    }

    /// A handle that cancels the batch's remaining trials when aborted.
    pub fn abort_handle(&self) -> AbortHandle {
        self.abort.clone()
    }

    /// Runs the whole plan (no early stopping), returning outcomes sorted
    /// by trial index. `job(trial, seed)` must be a pure function of its
    /// arguments for the determinism guarantee to hold.
    pub fn run<T, F>(&self, job: F) -> TrialBatch<T>
    where
        T: Send,
        F: Fn(u64, u64) -> T + Sync,
    {
        self.execute(job, None::<fn(&T) -> bool>)
    }

    /// Runs the plan with the early-stop criterion judging each trial by
    /// `is_success`. Requires [`TrialPlan::stop`] to be set (otherwise
    /// behaves like [`ParRunner::run`]).
    pub fn run_until<T, F, S>(&self, job: F, is_success: S) -> TrialBatch<T>
    where
        T: Send,
        F: Fn(u64, u64) -> T + Sync,
        S: Fn(&T) -> bool + Sync,
    {
        self.execute(job, Some(is_success))
    }

    fn execute<T, F, S>(&self, job: F, is_success: Option<S>) -> TrialBatch<T>
    where
        T: Send,
        F: Fn(u64, u64) -> T + Sync,
        S: Fn(&T) -> bool + Sync,
    {
        let plan = &self.plan;
        let trials = plan.trials;
        let started = Instant::now();
        if trials == 0 {
            return TrialBatch {
                outcomes: Vec::new(),
                executed: 0,
                timed_out: 0,
                aborted: self.abort.is_aborted(),
                elapsed: started.elapsed(),
            };
        }

        let threads = plan.effective_jobs();
        let next = AtomicU64::new(0);
        let executed = AtomicU64::new(0);
        // Deterministic stopping point: trials with index >= stop_at are
        // never *kept*. u64::MAX = "no stop decided yet".
        let stop_at = AtomicU64::new(u64::MAX);
        let shared: Mutex<PrefixState<T>> = Mutex::new(PrefixState::new(trials, plan.stop));

        crossbeam::scope(|scope| {
            for _ in 0..threads {
                scope.spawn(|_| loop {
                    if self.abort.is_aborted() {
                        break;
                    }
                    let trial = next.fetch_add(1, Ordering::Relaxed);
                    if trial >= trials || trial >= stop_at.load(Ordering::Relaxed) {
                        break;
                    }
                    let seed = plan.seed_of(trial);
                    let t0 = Instant::now();
                    let value = job(plan.first.wrapping_add(trial), seed);
                    let duration = t0.elapsed();
                    executed.fetch_add(1, Ordering::Relaxed);
                    let timed_out = plan.timeout.is_some_and(|lim| duration > lim);
                    let success = is_success.as_ref().map(|s| s(&value));
                    let outcome = TrialOutcome {
                        trial: plan.first.wrapping_add(trial),
                        seed,
                        value,
                        duration,
                        timed_out,
                    };
                    let mut state = shared.lock();
                    if let Some(stop) = state.push(trial, outcome, success) {
                        // First thread to advance the prefix past the
                        // criterion publishes the deterministic cut-off.
                        stop_at.fetch_min(stop, Ordering::Relaxed);
                    }
                });
            }
        })
        .expect("trial worker panicked");

        let state = shared.into_inner();
        let cut = stop_at.load(Ordering::Relaxed);
        let mut outcomes: Vec<TrialOutcome<T>> = state
            .slots
            .into_iter()
            .enumerate()
            .filter(|(i, _)| (*i as u64) < cut)
            .filter_map(|(_, s)| s)
            .collect();
        outcomes.sort_by_key(|o| o.trial);
        let timed_out = outcomes.iter().filter(|o| o.timed_out).count() as u64;
        TrialBatch {
            outcomes,
            executed: executed.into_inner(),
            timed_out,
            aborted: self.abort.is_aborted(),
            elapsed: started.elapsed(),
        }
    }
}

/// Completion tracking for the deterministic early-stop rule: outcomes are
/// parked in index slots; the contiguous frontier advances as gaps fill,
/// evaluating the criterion at every prefix length exactly once — the same
/// sequence of decisions a sequential run would make.
struct PrefixState<T> {
    slots: Vec<Option<TrialOutcome<T>>>,
    success_by_index: Vec<Option<bool>>,
    stop: Option<StopWhenTight>,
    /// Trials `0..frontier` are all complete.
    frontier: u64,
    /// Successes among trials `0..frontier`.
    successes_in_prefix: u64,
}

impl<T> PrefixState<T> {
    fn new(trials: u64, stop: Option<StopWhenTight>) -> Self {
        PrefixState {
            slots: (0..trials).map(|_| None).collect(),
            success_by_index: vec![None; stop.is_some() as usize * trials as usize],
            stop,
            frontier: 0,
            successes_in_prefix: 0,
        }
    }

    /// Records a completed trial; returns the deterministic stopping point
    /// if the criterion first holds at some prefix ending here.
    fn push(&mut self, index: u64, outcome: TrialOutcome<T>, success: Option<bool>) -> Option<u64> {
        self.slots[index as usize] = Some(outcome);
        let stop = self.stop?;
        self.success_by_index[index as usize] = Some(success.unwrap_or(false));
        let total = self.slots.len() as u64;
        while self.frontier < total {
            let Some(s) = self.success_by_index[self.frontier as usize] else {
                break;
            };
            self.frontier += 1;
            self.successes_in_prefix += u64::from(s);
            if self.frontier >= stop.min_trials {
                let (lo, hi) = wilson_interval(self.successes_in_prefix, self.frontier);
                if (hi - lo) / 2.0 <= stop.half_width {
                    return Some(self.frontier);
                }
            }
        }
        None
    }
}

/// Runs `job` for `trials` independent seeds derived from `base_seed`, in
/// parallel over all cores, returning outcomes sorted by trial index.
///
/// Thin compatibility wrapper over [`ParRunner`];
/// `job(trial, seed)` should construct its own protocol/adversary state —
/// everything it needs to be an independent experiment.
pub fn run_trials_with<T, F>(trials: u64, base_seed: u64, job: F) -> Vec<TrialOutcome<T>>
where
    T: Send,
    F: Fn(u64, u64) -> T + Sync,
{
    ParRunner::new(TrialPlan::new(base_seed, trials))
        .run(job)
        .outcomes
}

/// Convenience wrapper: runs `job` once per trial with a copy of `cfg`
/// whose seed is the derived per-trial seed.
pub fn run_trials<T, F>(cfg: &SimConfig, trials: u64, job: F) -> Vec<TrialOutcome<T>>
where
    T: Send,
    F: Fn(&SimConfig) -> T + Sync,
{
    run_trials_with(trials, cfg.seed, |_, seed| {
        let mut c = cfg.clone();
        c.seed = seed;
        job(&c)
    })
}

/// Like [`run_trials`], but with an explicit job count (`0` = all cores).
pub fn run_trials_jobs<T, F>(
    cfg: &SimConfig,
    trials: u64,
    jobs: usize,
    job: F,
) -> Vec<TrialOutcome<T>>
where
    T: Send,
    F: Fn(&SimConfig) -> T + Sync,
{
    ParRunner::new(TrialPlan::new(cfg.seed, trials).jobs(jobs))
        .run(|_, seed| {
            let mut c = cfg.clone();
            c.seed = seed;
            job(&c)
        })
        .outcomes
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trials_are_ordered_and_seeded_distinctly() {
        let out = run_trials_with(32, 7, |trial, seed| (trial, seed));
        assert_eq!(out.len(), 32);
        for (i, t) in out.iter().enumerate() {
            assert_eq!(t.trial, i as u64);
            assert_eq!(t.value.0, i as u64);
        }
        let mut seeds: Vec<u64> = out.iter().map(|t| t.seed).collect();
        seeds.sort_unstable();
        seeds.dedup();
        assert_eq!(seeds.len(), 32, "per-trial seeds must be distinct");
    }

    #[test]
    fn reproducible_across_invocations() {
        let a = run_trials_with(8, 42, |_, seed| seed);
        let b = run_trials_with(8, 42, |_, seed| seed);
        assert_eq!(
            a.iter().map(|t| t.value).collect::<Vec<_>>(),
            b.iter().map(|t| t.value).collect::<Vec<_>>()
        );
    }

    #[test]
    fn cfg_wrapper_varies_seed_only() {
        let cfg = SimConfig::new(8).seed(5).max_rounds(3);
        let out = run_trials(&cfg, 4, |c| (c.n, c.max_rounds, c.seed));
        assert!(out.iter().all(|t| t.value.0 == 8 && t.value.1 == 3));
        assert!(out.windows(2).all(|w| w[0].value.2 != w[1].value.2));
    }

    #[test]
    fn zero_trials_is_empty() {
        let out = run_trials_with(0, 1, |_, _| ());
        assert!(out.is_empty());
    }

    #[test]
    fn identical_results_at_any_thread_count() {
        let value = |trial: u64, seed: u64| (trial, seed, seed.wrapping_mul(trial | 1));
        let mut reference: Option<Vec<(u64, u64, u64)>> = None;
        for jobs in [1usize, 2, 3, 8] {
            let batch = ParRunner::new(TrialPlan::new(99, 40).jobs(jobs)).run(value);
            let got: Vec<_> = batch.outcomes.iter().map(|o| o.value).collect();
            match &reference {
                None => reference = Some(got),
                Some(want) => assert_eq!(want, &got, "divergence at jobs={jobs}"),
            }
        }
    }

    #[test]
    fn seed_ranges_compose() {
        // Trials [0,10) then [10,20) must equal trials [0,20).
        let all = ParRunner::new(TrialPlan::new(5, 20)).run(|_, s| s);
        let lo = ParRunner::new(TrialPlan::new(5, 10)).run(|_, s| s);
        let hi = ParRunner::new(TrialPlan::new(5, 10).first(10)).run(|_, s| s);
        let stitched: Vec<u64> = lo.values().chain(hi.values()).copied().collect();
        assert_eq!(
            all.values().copied().collect::<Vec<u64>>(),
            stitched,
            "seed-range split must reproduce the full batch"
        );
        assert_eq!(hi.outcomes[0].trial, 10);
    }

    #[test]
    fn early_stop_is_prefix_deterministic() {
        // All trials succeed, so the interval tightens on trial count
        // alone: the stopping point is the same at every thread count.
        let mut cuts = Vec::new();
        for jobs in [1usize, 2, 8] {
            let plan = TrialPlan::new(1, 500).jobs(jobs).stop_when(10, 0.1);
            let batch = ParRunner::new(plan).run_until(|_, seed| seed, |_| true);
            cuts.push(batch.len());
            assert!(batch.executed >= batch.len() as u64);
        }
        assert_eq!(cuts[0], cuts[1]);
        assert_eq!(cuts[1], cuts[2]);
        assert!(cuts[0] < 500, "criterion should stop well before the cap");
        assert!(cuts[0] >= 10, "min_trials must be respected");
    }

    #[test]
    fn early_stop_prefix_matches_sequential_values() {
        let job = |_t: u64, seed: u64| seed;
        let succ = |v: &u64| v % 4 != 0; // ~75% success rate
        let seq =
            ParRunner::new(TrialPlan::new(7, 400).jobs(1).stop_when(20, 0.12)).run_until(job, succ);
        let par =
            ParRunner::new(TrialPlan::new(7, 400).jobs(8).stop_when(20, 0.12)).run_until(job, succ);
        assert_eq!(
            seq.values().collect::<Vec<_>>(),
            par.values().collect::<Vec<_>>()
        );
    }

    #[test]
    fn timeout_flags_slow_trials_without_dropping_them() {
        let plan = TrialPlan::new(3, 4).timeout(Duration::from_nanos(1));
        let batch = ParRunner::new(plan).run(|_, seed| {
            std::thread::sleep(Duration::from_millis(2));
            seed
        });
        assert_eq!(batch.len(), 4, "timed-out trials are kept, only flagged");
        assert_eq!(batch.timed_out, 4);
        assert!(batch.outcomes.iter().all(|o| o.timed_out));
    }

    #[test]
    fn abort_skips_remaining_trials() {
        let runner = ParRunner::new(TrialPlan::new(3, 1000).jobs(2));
        let handle = runner.abort_handle();
        let batch = runner.run(move |trial, seed| {
            if trial == 0 {
                handle.abort();
            }
            seed
        });
        assert!(batch.aborted);
        assert!(
            (batch.executed as usize) < 1000,
            "abort must cut the batch short, executed {}",
            batch.executed
        );
    }
}
