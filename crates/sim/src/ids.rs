//! Strongly-typed identifiers used throughout the simulator.
//!
//! The simulator distinguishes three kinds of indices that are all "just
//! integers" but must never be confused (cf. the newtype guidance of the
//! Rust API guidelines, C-NEWTYPE):
//!
//! * [`NodeId`] — a *global* node index `0..n`, known to the simulator and
//!   to the adversary, but **not** to a KT0 protocol;
//! * [`Port`] — a *local* port index `0..n-1` through which a node reaches
//!   one of its `n-1` neighbours;
//! * [`Round`] — a synchronous round number, starting at `0`.

use std::fmt;

/// Global identity of a node inside the simulator.
///
/// In the anonymous (KT0) model of the paper, protocol code must not base
/// decisions on this value; it exists so that the engine, the adversary and
/// the analysis tooling can refer to nodes. KT1 baseline protocols (which the
/// paper compares against, e.g. Gilbert–Kowalski) are allowed to read it via
/// [`crate::protocol::Ctx::node_id`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The node's index as a `usize`, for indexing simulator arrays.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl From<u32> for NodeId {
    fn from(v: u32) -> Self {
        NodeId(v)
    }
}

impl From<usize> for NodeId {
    fn from(v: usize) -> Self {
        NodeId(u32::try_from(v).expect("node index exceeds u32 range"))
    }
}

/// A local port index in `0..n-1`.
///
/// Ports are the only addressing mechanism available to a KT0 protocol: a
/// node may send to any of its ports and may reply on the port a message
/// arrived on, but it does not know which [`NodeId`] a port leads to.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct Port(pub u32);

impl Port {
    /// The port's index as a `usize`.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for Port {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

impl From<u32> for Port {
    fn from(v: u32) -> Self {
        Port(v)
    }
}

/// A synchronous round number (`0`-based).
pub type Round = u32;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_id_roundtrips_through_usize() {
        let id = NodeId::from(17usize);
        assert_eq!(id.index(), 17);
        assert_eq!(NodeId::from(17u32), id);
    }

    #[test]
    fn display_is_compact() {
        assert_eq!(NodeId(3).to_string(), "n3");
        assert_eq!(Port(9).to_string(), "p9");
    }

    #[test]
    fn ordering_follows_numeric_order() {
        assert!(NodeId(1) < NodeId(2));
        assert!(Port(0) < Port(10));
    }

    #[test]
    #[should_panic(expected = "exceeds u32")]
    fn oversized_index_panics() {
        let _ = NodeId::from(usize::MAX);
    }
}
