//! # `ftc-sim` — a synchronous crash-fault complete-network simulator
//!
//! This crate is the substrate on which the protocols of Kumar & Molla,
//! *"On the Message Complexity of Fault-Tolerant Computation: Leader
//! Election and Agreement"* (PODC 2021 / IEEE TPDS 2023) execute. It
//! implements, as faithfully and measurably as possible, the model of
//! Section II of the paper:
//!
//! * a **complete network** of `n` nodes,
//! * **anonymous (KT0)** port wiring: every node talks to its neighbours
//!   through ports `0..n-1` that are connected by a uniformly random
//!   permutation it does not know (a [`ports::PortMap`] backed by a
//!   format-preserving Feistel permutation, so memory stays `O(1)` per node),
//! * **synchronous rounds** in the **CONGEST** model, with per-message and
//!   per-edge bit accounting ([`metrics`]),
//! * a **static crash adversary** that fixes the faulty set before the run
//!   but adaptively chooses *when* each faulty node crashes and *which
//!   subset* of its final-round messages is delivered ([`adversary`]),
//! * optional recording of the **communication graph** `C^r` used by the
//!   paper's lower-bound arguments ([`trace`]).
//!
//! Protocols implement the [`protocol::Protocol`] trait and are executed by
//! [`engine::run`]; repeated seeded executions are driven in parallel by
//! [`runner`]. All executions are deterministic functions of
//! `(SimConfig, seed)`.
//!
//! ## Example
//!
//! ```
//! use ftc_sim::prelude::*;
//!
//! /// Every node sends one `()` to a random port in round 0 and stops.
//! struct Ping { done: bool }
//!
//! impl Protocol for Ping {
//!     type Msg = ();
//!     fn on_start(&mut self, ctx: &mut Ctx<'_, ()>) {
//!         let p = ctx.random_port();
//!         ctx.send(p, ());
//!     }
//!     fn on_round(&mut self, _ctx: &mut Ctx<'_, ()>, _inbox: &[Incoming<()>]) {
//!         self.done = true;
//!     }
//!     fn is_terminated(&self) -> bool { self.done }
//! }
//!
//! let cfg = SimConfig::new(64).seed(7);
//! let result = run(&cfg, |_| Ping { done: false }, &mut NoFaults);
//! assert_eq!(result.metrics.msgs_sent, 64);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adversary;
pub mod engine;
pub mod ids;
pub mod json;
pub mod metrics;
#[cfg(test)]
mod naive;
pub mod node;
pub mod payload;
pub mod perm;
pub mod ports;
pub mod protocol;
pub mod round;
pub mod runner;
pub mod stats;
pub mod topology;
pub mod trace;

/// Convenient glob import for simulator users.
pub mod prelude {
    pub use crate::adversary::{
        Adversary, AdversaryView, CrashDirective, DeliveryFilter, EagerCrash, FaultPlan, FaultySet,
        NoFaults, RandomCrash, ScriptedCrash,
    };
    pub use crate::engine::{run, run_sharded, ConfigError, RunResult, SimConfig};
    pub use crate::ids::{NodeId, Port, Round};
    pub use crate::json::{Json, JsonError};
    pub use crate::metrics::{LogHistogram, Metrics, MetricsAggregate, ServiceMetrics};
    pub use crate::node::{Activation, NodeHarness};
    pub use crate::payload::{Payload, Wire};
    pub use crate::ports::PortMap;
    pub use crate::protocol::{Ctx, Incoming, Protocol};
    pub use crate::round::{ControlCore, ControlOutput, DeadEdgeCache, EdgeFates, RoundVerdict};
    pub use crate::runner::{
        run_trials, run_trials_jobs, run_trials_with, AbortHandle, ParRunner, TrialBatch,
        TrialOutcome, TrialPlan,
    };
    pub use crate::stats::Summary;
    pub use crate::topology::{EdgeSet, Topology};
    pub use crate::trace::{Trace, TraceEvent};
}
