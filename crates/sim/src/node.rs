//! Per-node protocol driving, independent of the execution substrate.
//!
//! A [`NodeHarness`] owns everything that is *local* to one node of the
//! model: its protocol state machine, its private seeded randomness, its
//! KT0 port permutation and its send budget. The in-process engine keeps
//! `n` harnesses in one loop; the `ftc-net` runtime gives each harness to a
//! node thread that talks real sockets. Both derive identical per-node
//! state from `(SimConfig, NodeId)`, which is what makes a network run
//! replay a simulator run exactly.

use rand::rngs::SmallRng;
use rand::SeedableRng;

use crate::engine::SimConfig;
use crate::ids::{NodeId, Port, Round};
use crate::perm::stream_seed;
use crate::ports::PortMap;
use crate::protocol::{Ctx, Incoming, Protocol};
use crate::round::{SALT_NODES, SALT_TOPOLOGY};

/// The result of one activation of a node.
#[derive(Debug)]
pub struct Activation<M> {
    /// The messages the node queued this round, in send order, already
    /// capped by the node's send budget.
    pub sends: Vec<(Port, M)>,
    /// Sends dropped against the budget this activation.
    pub suppressed: u64,
    /// The node's quiescence hint after the activation.
    pub terminated: bool,
}

/// The bookkeeping of one activation when the sends are written into a
/// caller-supplied buffer (see [`NodeHarness::activate_into`]).
#[derive(Clone, Copy, Debug)]
pub struct ActivationMeta {
    /// Sends dropped against the budget this activation.
    pub suppressed: u64,
    /// The node's quiescence hint after the activation.
    pub terminated: bool,
    /// The node's sparse-activation hint after the activation (see
    /// [`Protocol::is_inert`]): `true` means the driver may skip this node
    /// until a message arrives for it.
    pub inert: bool,
}

/// One node of the model: protocol state + ports + private randomness.
#[derive(Debug)]
pub struct NodeHarness<P: Protocol> {
    node: NodeId,
    n: u32,
    kt1: bool,
    ports: PortMap,
    rng: SmallRng,
    state: P,
    send_cap: Option<u32>,
    sends_used: u32,
}

impl<P: Protocol> NodeHarness<P> {
    /// Builds node `node`'s harness for a run of `cfg`, wrapping `state`.
    ///
    /// The port permutation and the RNG stream are derived from
    /// `(cfg.seed, node)` exactly as the engine derives them, so harnesses
    /// built independently (e.g. one per thread) still agree with an
    /// engine run of the same configuration.
    pub fn new(cfg: &SimConfig, node: NodeId, state: P) -> Self {
        let topology_seed = stream_seed(cfg.seed, SALT_TOPOLOGY);
        // Independent construction regenerates the node's wiring from the
        // topology; fine for the socket runtimes' network sizes. Drivers
        // that already built [`crate::round::network_ports`] should hand
        // the map in via [`NodeHarness::with_ports`] instead.
        let adjacency = cfg.topology.adjacency(cfg.n, topology_seed);
        let ports = PortMap::with_wiring(
            cfg.n,
            node,
            topology_seed,
            cfg.topology.wiring_of(node, adjacency.as_ref()),
        );
        Self::with_ports(cfg, node, state, ports)
    }

    /// Like [`NodeHarness::new`] but adopts a prebuilt port map — the
    /// engine builds all `n` maps once via
    /// [`crate::round::network_ports`] and hands them out, so list
    /// topologies are generated once per run instead of once per node.
    ///
    /// `ports` must be the map [`NodeHarness::new`] would derive for
    /// `(cfg, node)`; handing in anything else forfeits replay equality
    /// with independently constructed harnesses.
    pub fn with_ports(cfg: &SimConfig, node: NodeId, state: P, ports: PortMap) -> Self {
        let node_seed_base = stream_seed(cfg.seed, SALT_NODES);
        NodeHarness {
            node,
            n: cfg.n,
            kt1: cfg.kt1,
            ports,
            rng: SmallRng::seed_from_u64(stream_seed(node_seed_base, u64::from(node.0))),
            state,
            send_cap: cfg.send_cap,
            sends_used: 0,
        }
    }

    /// This node's id.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Runs one activation: `on_start` at round 0, `on_round` with `inbox`
    /// afterwards. Applies the per-node send budget to the queued sends.
    pub fn activate(&mut self, round: Round, inbox: &[Incoming<P::Msg>]) -> Activation<P::Msg> {
        let mut outbox = Vec::new();
        let meta = self.activate_into(round, inbox, &mut outbox);
        Activation {
            sends: outbox,
            suppressed: meta.suppressed,
            terminated: meta.terminated,
        }
    }

    /// Allocation-free variant of [`NodeHarness::activate`]: the queued
    /// sends are written into `outbox` (cleared first), so a driver looping
    /// many nodes can reuse one scratch buffer across all activations. The
    /// engine pairs this with [`crate::round::resolve_sends_into`].
    pub fn activate_into(
        &mut self,
        round: Round,
        inbox: &[Incoming<P::Msg>],
        outbox: &mut Vec<(Port, P::Msg)>,
    ) -> ActivationMeta {
        outbox.clear();
        let mut ctx = Ctx {
            node: self.node,
            n: self.n,
            round,
            kt1: self.kt1,
            ports: &self.ports,
            rng: &mut self.rng,
            outbox,
        };
        if round == 0 {
            self.state.on_start(&mut ctx);
        } else {
            self.state.on_round(&mut ctx, inbox);
        }
        // Enforce the per-node send budget, if any: keep only the first
        // `remaining` queued messages of this activation.
        let mut suppressed = 0u64;
        if let Some(cap) = self.send_cap {
            let remaining = cap.saturating_sub(self.sends_used) as usize;
            if outbox.len() > remaining {
                suppressed = (outbox.len() - remaining) as u64;
                outbox.truncate(remaining);
            }
            self.sends_used += outbox.len() as u32;
        }
        ActivationMeta {
            suppressed,
            terminated: self.state.is_terminated(),
            inert: self.state.is_inert(),
        }
    }

    /// Resolves queued sends to `(destination, message)` pairs through this
    /// node's own port permutation — what a network node does before
    /// putting frames on the wire.
    pub fn route(&self, sends: Vec<(Port, P::Msg)>) -> Vec<(NodeId, P::Msg)> {
        sends
            .into_iter()
            .map(|(port, msg)| (self.ports.peer(port), msg))
            .collect()
    }

    /// The local port a message from `src` arrives on — what a network
    /// node computes when a frame carries its sender's id.
    ///
    /// # Panics
    ///
    /// Panics if `src` is this node itself or out of range.
    pub fn port_from(&self, src: NodeId) -> Port {
        self.ports.port_to(src)
    }

    /// Read access to the protocol state.
    pub fn state(&self) -> &P {
        &self.state
    }

    /// Consumes the harness, returning the final protocol state.
    pub fn into_state(self) -> P {
        self.state
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Broadcasts `round` every activation, terminated after 2 rounds.
    struct Echoer {
        rounds: u32,
        heard: usize,
    }

    impl Protocol for Echoer {
        type Msg = u64;
        fn on_start(&mut self, ctx: &mut Ctx<'_, u64>) {
            ctx.broadcast(0);
        }
        fn on_round(&mut self, _ctx: &mut Ctx<'_, u64>, inbox: &[Incoming<u64>]) {
            self.rounds += 1;
            self.heard += inbox.len();
        }
        fn is_terminated(&self) -> bool {
            self.rounds >= 2
        }
    }

    #[test]
    fn activation_runs_start_then_rounds() {
        let cfg = SimConfig::new(8).seed(3);
        let mut h = NodeHarness::new(
            &cfg,
            NodeId(1),
            Echoer {
                rounds: 0,
                heard: 0,
            },
        );
        let a0 = h.activate(0, &[]);
        assert_eq!(a0.sends.len(), 7);
        assert!(!a0.terminated);
        let inbox = vec![Incoming {
            port: Port(0),
            msg: 9u64,
        }];
        let a1 = h.activate(1, &inbox);
        assert!(a1.sends.is_empty());
        let a2 = h.activate(2, &inbox);
        assert!(a2.terminated);
        assert_eq!(h.state().heard, 2);
    }

    #[test]
    fn send_cap_suppresses_excess() {
        let cfg = SimConfig::new(8).seed(3).send_cap(4);
        let mut h = NodeHarness::new(
            &cfg,
            NodeId(0),
            Echoer {
                rounds: 0,
                heard: 0,
            },
        );
        let a = h.activate(0, &[]);
        assert_eq!(a.sends.len(), 4);
        assert_eq!(a.suppressed, 3);
    }

    #[test]
    fn routing_agrees_with_network_ports() {
        let cfg = SimConfig::new(16).seed(11);
        let ports = crate::round::network_ports(&cfg);
        let h = NodeHarness::new(
            &cfg,
            NodeId(5),
            Echoer {
                rounds: 0,
                heard: 0,
            },
        );
        let routed = h.route(vec![(Port(2), 1u64), (Port(9), 2)]);
        assert_eq!(routed[0].0, ports[5].peer(Port(2)));
        assert_eq!(routed[1].0, ports[5].peer(Port(9)));
        // Receiver-side port resolution is the inverse wiring.
        let peer = routed[0].0;
        let recv = NodeHarness::new(
            &cfg,
            peer,
            Echoer {
                rounds: 0,
                heard: 0,
            },
        );
        assert_eq!(
            recv.port_from(NodeId(5)),
            ports[peer.index()].port_to(NodeId(5))
        );
    }
}
