//! Minimal self-contained JSON for schedule portability.
//!
//! Counterexample schedules found by the adversary-search harness
//! (`ftc-hunt`) must travel between processes and substrates: a schedule
//! hunted on the sim engine is replayed on the `ftc-net` cluster runtime,
//! possibly on another machine. The workspace vendors no serde, so this
//! module provides the few hundred lines of JSON the artifact format
//! actually needs: a [`Json`] value type, a strict parser, a compact
//! renderer, and conversions for the schedule types
//! ([`DeliveryFilter`], [`FaultPlan`], [`SimConfig`]).
//!
//! Integers are kept exact: a `u64` seed round-trips bit-for-bit (values
//! are only widened to `f64` when they carry a fraction or exponent),
//! which matters because every seed in this codebase is a full-width
//! `splitmix64` output.

use std::fmt;

use crate::adversary::{DeliveryFilter, FaultPlan};
use crate::engine::SimConfig;
use crate::ids::NodeId;
use crate::metrics::{LogHistogram, Metrics, RoundMetrics, ServiceMetrics};
use crate::stats::Summary;

/// A JSON value. Integers are stored exactly ([`Json::UInt`]/[`Json::Int`]);
/// only fractional or exponent-formed numbers become [`Json::Num`].
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A non-negative integer literal (exact, full `u64` range).
    UInt(u64),
    /// A negative integer literal (exact).
    Int(i64),
    /// A fractional / exponent number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion order is preserved (render is deterministic).
    Obj(Vec<(String, Json)>),
}

/// A parse or schema error, with enough context to act on.
#[derive(Clone, Debug, PartialEq)]
pub struct JsonError {
    /// What went wrong.
    pub message: String,
}

impl JsonError {
    pub(crate) fn new(message: impl Into<String>) -> Self {
        JsonError {
            message: message.into(),
        }
    }
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json: {}", self.message)
    }
}

impl std::error::Error for JsonError {}

impl Json {
    /// Looks up a key of an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Like [`Json::get`] but with a descriptive error for absent keys.
    pub fn field(&self, key: &str) -> Result<&Json, JsonError> {
        self.get(key)
            .ok_or_else(|| JsonError::new(format!("missing field `{key}`")))
    }

    /// The value as a `u64` (exact integers only).
    pub fn as_u64(&self) -> Result<u64, JsonError> {
        match self {
            Json::UInt(u) => Ok(*u),
            Json::Int(i) if *i >= 0 => Ok(*i as u64),
            other => Err(JsonError::new(format!(
                "expected unsigned integer, got {other:?}"
            ))),
        }
    }

    /// The value as an `f64` (any number).
    pub fn as_f64(&self) -> Result<f64, JsonError> {
        match self {
            Json::UInt(u) => Ok(*u as f64),
            Json::Int(i) => Ok(*i as f64),
            Json::Num(x) => Ok(*x),
            other => Err(JsonError::new(format!("expected number, got {other:?}"))),
        }
    }

    /// The value as a bool.
    pub fn as_bool(&self) -> Result<bool, JsonError> {
        match self {
            Json::Bool(b) => Ok(*b),
            other => Err(JsonError::new(format!("expected bool, got {other:?}"))),
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Result<&str, JsonError> {
        match self {
            Json::Str(s) => Ok(s),
            other => Err(JsonError::new(format!("expected string, got {other:?}"))),
        }
    }

    /// The value as an array slice.
    pub fn as_arr(&self) -> Result<&[Json], JsonError> {
        match self {
            Json::Arr(items) => Ok(items),
            other => Err(JsonError::new(format!("expected array, got {other:?}"))),
        }
    }

    /// Compact single-line rendering (no insignificant whitespace).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }

    fn render_into(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::UInt(u) => out.push_str(&u.to_string()),
            Json::Int(i) => out.push_str(&i.to_string()),
            Json::Num(x) if x.is_finite() => out.push_str(&format!("{x:?}")),
            Json::Num(_) => out.push_str("null"),
            Json::Str(s) => render_string(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.render_into(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    render_string(k, out);
                    out.push(':');
                    v.render_into(out);
                }
                out.push('}');
            }
        }
    }

    /// Parses a complete JSON document (trailing content is an error).
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(JsonError::new(format!(
                "trailing content at byte {}",
                p.pos
            )));
        }
        Ok(value)
    }
}

fn render_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(JsonError::new(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(JsonError::new(format!(
                "invalid literal at byte {}",
                self.pos
            )))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(JsonError::new(format!(
                "unexpected input at byte {}",
                self.pos
            ))),
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(JsonError::new(format!("bad array at byte {}", self.pos))),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(JsonError::new(format!("bad object at byte {}", self.pos))),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err(JsonError::new("unterminated string"));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(JsonError::new("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| JsonError::new("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| JsonError::new("non-ascii \\u escape"))?;
                            let cp = u32::from_str_radix(hex, 16)
                                .map_err(|_| JsonError::new("bad \\u escape"))?;
                            self.pos += 4;
                            // Surrogates are not paired; the renderer never
                            // emits them, so reject rather than mis-decode.
                            let c = char::from_u32(cp)
                                .ok_or_else(|| JsonError::new("surrogate \\u escape"))?;
                            out.push(c);
                        }
                        other => {
                            return Err(JsonError::new(format!(
                                "unknown escape `\\{}`",
                                other as char
                            )))
                        }
                    }
                }
                _ => {
                    // Multi-byte UTF-8: copy the full scalar.
                    let start = self.pos - 1;
                    let len = utf8_len(b);
                    let end = start + len;
                    let chunk = self
                        .bytes
                        .get(start..end)
                        .ok_or_else(|| JsonError::new("truncated utf-8"))?;
                    let s = std::str::from_utf8(chunk)
                        .map_err(|_| JsonError::new("invalid utf-8 in string"))?;
                    out.push_str(s);
                    self.pos = end;
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut fractional = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    fractional = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| JsonError::new("invalid number bytes"))?;
        if !fractional {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Json::UInt(u));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Json::Int(i));
            }
        }
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| JsonError::new(format!("bad number `{text}`")))
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

// --- Schedule serde -------------------------------------------------------

impl DeliveryFilter {
    /// JSON encoding, tagged by `kind`.
    pub fn to_json(&self) -> Json {
        match self {
            DeliveryFilter::DeliverAll => {
                Json::Obj(vec![("kind".into(), Json::Str("deliver_all".into()))])
            }
            DeliveryFilter::DropAll => {
                Json::Obj(vec![("kind".into(), Json::Str("drop_all".into()))])
            }
            DeliveryFilter::KeepFirst(k) => Json::Obj(vec![
                ("kind".into(), Json::Str("keep_first".into())),
                ("k".into(), Json::UInt(*k as u64)),
            ]),
            DeliveryFilter::DeliverEachWithProbability(p) => Json::Obj(vec![
                ("kind".into(), Json::Str("deliver_each".into())),
                ("p".into(), Json::Num(*p)),
            ]),
            DeliveryFilter::KeepToDestinations(dsts) => Json::Obj(vec![
                ("kind".into(), Json::Str("keep_to".into())),
                (
                    "dsts".into(),
                    Json::Arr(dsts.iter().map(|d| Json::UInt(u64::from(d.0))).collect()),
                ),
            ]),
        }
    }

    /// Decodes a filter from its [`DeliveryFilter::to_json`] form.
    pub fn from_json(v: &Json) -> Result<Self, JsonError> {
        match v.field("kind")?.as_str()? {
            "deliver_all" => Ok(DeliveryFilter::DeliverAll),
            "drop_all" => Ok(DeliveryFilter::DropAll),
            "keep_first" => Ok(DeliveryFilter::KeepFirst(v.field("k")?.as_u64()? as usize)),
            "deliver_each" => Ok(DeliveryFilter::DeliverEachWithProbability(
                v.field("p")?.as_f64()?,
            )),
            "keep_to" => {
                let dsts = v
                    .field("dsts")?
                    .as_arr()?
                    .iter()
                    .map(|d| d.as_u64().map(|u| NodeId(u as u32)))
                    .collect::<Result<Vec<_>, _>>()?;
                Ok(DeliveryFilter::KeepToDestinations(dsts))
            }
            other => Err(JsonError::new(format!("unknown filter kind `{other}`"))),
        }
    }
}

impl FaultPlan {
    /// JSON encoding: an array of `{node, round, filter}` entries.
    pub fn to_json(&self) -> Json {
        Json::Arr(
            self.entries()
                .iter()
                .map(|(node, round, filter)| {
                    Json::Obj(vec![
                        ("node".into(), Json::UInt(u64::from(node.0))),
                        ("round".into(), Json::UInt(u64::from(*round))),
                        ("filter".into(), filter.to_json()),
                    ])
                })
                .collect(),
        )
    }

    /// Decodes a plan from its [`FaultPlan::to_json`] form.
    pub fn from_json(v: &Json) -> Result<Self, JsonError> {
        let entries = v
            .as_arr()?
            .iter()
            .map(|e| {
                Ok((
                    NodeId(e.field("node")?.as_u64()? as u32),
                    e.field("round")?.as_u64()? as u32,
                    DeliveryFilter::from_json(e.field("filter")?)?,
                ))
            })
            .collect::<Result<Vec<_>, JsonError>>()?;
        Ok(FaultPlan::from_entries(entries))
    }
}

impl SimConfig {
    /// JSON encoding of every configuration knob.
    ///
    /// The `topology` field is appended only for non-complete graphs:
    /// complete-graph configurations render byte-identically to the
    /// pre-topology schema, which is what keeps every committed
    /// content-addressed record id stable.
    pub fn to_json(&self) -> Json {
        let mut fields = vec![
            ("n".into(), Json::UInt(u64::from(self.n))),
            ("seed".into(), Json::UInt(self.seed)),
            ("max_rounds".into(), Json::UInt(u64::from(self.max_rounds))),
            ("kt1".into(), Json::Bool(self.kt1)),
            ("record_trace".into(), Json::Bool(self.record_trace)),
            (
                "congest_bits".into(),
                self.congest_bits
                    .map_or(Json::Null, |b| Json::UInt(u64::from(b))),
            ),
            (
                "send_cap".into(),
                self.send_cap
                    .map_or(Json::Null, |c| Json::UInt(u64::from(c))),
            ),
            (
                "edge_failure_prob".into(),
                Json::Num(self.edge_failure_prob),
            ),
        ];
        if !self.topology.is_complete() {
            fields.push(("topology".into(), self.topology.to_json()));
        }
        Json::Obj(fields)
    }

    /// Decodes and validates a configuration from its
    /// [`SimConfig::to_json`] form.
    pub fn from_json(v: &Json) -> Result<Self, JsonError> {
        let mut cfg = SimConfig::try_new(v.field("n")?.as_u64()? as u32)
            .map_err(|e| JsonError::new(e.to_string()))?;
        cfg.seed = v.field("seed")?.as_u64()?;
        cfg.max_rounds = v.field("max_rounds")?.as_u64()? as u32;
        cfg.kt1 = v.field("kt1")?.as_bool()?;
        cfg.record_trace = v.field("record_trace")?.as_bool()?;
        cfg.congest_bits = match v.field("congest_bits")? {
            Json::Null => None,
            other => Some(other.as_u64()? as u32),
        };
        cfg.send_cap = match v.field("send_cap")? {
            Json::Null => None,
            other => Some(other.as_u64()? as u32),
        };
        cfg.edge_failure_prob = v.field("edge_failure_prob")?.as_f64()?;
        // Absent field = complete graph (the pre-topology schema).
        if let Some(t) = v.get("topology") {
            cfg.topology = crate::topology::Topology::from_json(t)?;
        }
        cfg.validate().map_err(|e| JsonError::new(e.to_string()))?;
        Ok(cfg)
    }
}

// --- Measurement serde ----------------------------------------------------
//
// The experiment-campaign store (`ftc-lab`) persists aggregated results as
// self-describing JSON records; these conversions are its vocabulary. The
// same exactness rule applies as for schedules: integer counters stay
// integers, and floats go through Rust's shortest-round-trip `{:?}` form,
// so encode→decode is the identity on every field.

impl Summary {
    /// JSON encoding of all nine summary statistics.
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("count".into(), Json::UInt(self.count as u64)),
            ("mean".into(), Json::Num(self.mean)),
            ("std_dev".into(), Json::Num(self.std_dev)),
            ("min".into(), Json::Num(self.min)),
            ("max".into(), Json::Num(self.max)),
            ("median".into(), Json::Num(self.median)),
            ("p95".into(), Json::Num(self.p95)),
            ("p99".into(), Json::Num(self.p99)),
            ("p999".into(), Json::Num(self.p999)),
        ])
    }

    /// Decodes a summary from its [`Summary::to_json`] form.
    pub fn from_json(v: &Json) -> Result<Self, JsonError> {
        Ok(Summary {
            count: v.field("count")?.as_u64()? as usize,
            mean: v.field("mean")?.as_f64()?,
            std_dev: v.field("std_dev")?.as_f64()?,
            min: v.field("min")?.as_f64()?,
            max: v.field("max")?.as_f64()?,
            median: v.field("median")?.as_f64()?,
            p95: v.field("p95")?.as_f64()?,
            p99: v.field("p99")?.as_f64()?,
            p999: v.field("p999")?.as_f64()?,
        })
    }
}

impl LogHistogram {
    /// JSON encoding. `sum` can exceed `u64` (it is a `u128` of per-trial
    /// message totals), so it travels as a decimal string.
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            (
                "counts".into(),
                Json::Arr(self.counts.iter().map(|&c| Json::UInt(c)).collect()),
            ),
            ("total".into(), Json::UInt(self.total)),
            ("sum".into(), Json::Str(self.sum.to_string())),
            ("min".into(), Json::UInt(self.min)),
            ("max".into(), Json::UInt(self.max)),
        ])
    }

    /// Decodes a histogram from its [`LogHistogram::to_json`] form,
    /// checking the bucket count and that `total` equals the bucket sum.
    pub fn from_json(v: &Json) -> Result<Self, JsonError> {
        let raw = v.field("counts")?.as_arr()?;
        if raw.len() != 65 {
            return Err(JsonError::new(format!(
                "histogram needs 65 buckets, got {}",
                raw.len()
            )));
        }
        let mut counts = [0u64; 65];
        for (slot, item) in counts.iter_mut().zip(raw.iter()) {
            *slot = item.as_u64()?;
        }
        let total = v.field("total")?.as_u64()?;
        if counts.iter().sum::<u64>() != total {
            return Err(JsonError::new("histogram total disagrees with buckets"));
        }
        let sum = v
            .field("sum")?
            .as_str()?
            .parse::<u128>()
            .map_err(|_| JsonError::new("histogram sum must be a decimal u128"))?;
        Ok(LogHistogram {
            counts,
            total,
            sum,
            min: v.field("min")?.as_u64()?,
            max: v.field("max")?.as_u64()?,
        })
    }
}

impl ServiceMetrics {
    /// JSON encoding of the cross-height service accounting.
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("heights".into(), Json::UInt(u64::from(self.heights))),
            (
                "failed_elections".into(),
                Json::UInt(u64::from(self.failed_elections)),
            ),
            (
                "leader_changes".into(),
                Json::UInt(u64::from(self.leader_changes)),
            ),
            ("ttnl_rounds".into(), self.ttnl_rounds.to_json()),
            ("available_rounds".into(), Json::UInt(self.available_rounds)),
            ("total_rounds".into(), Json::UInt(self.total_rounds)),
            (
                "current_leader".into(),
                self.current_leader.map_or(Json::Null, Json::UInt),
            ),
        ])
    }

    /// Decodes service metrics from their [`ServiceMetrics::to_json`] form.
    pub fn from_json(v: &Json) -> Result<Self, JsonError> {
        Ok(ServiceMetrics {
            heights: v.field("heights")?.as_u64()? as u32,
            failed_elections: v.field("failed_elections")?.as_u64()? as u32,
            leader_changes: v.field("leader_changes")?.as_u64()? as u32,
            ttnl_rounds: LogHistogram::from_json(v.field("ttnl_rounds")?)?,
            available_rounds: v.field("available_rounds")?.as_u64()?,
            total_rounds: v.field("total_rounds")?.as_u64()?,
            current_leader: match v.field("current_leader")? {
                Json::Null => None,
                other => Some(other.as_u64()?),
            },
        })
    }
}

impl Metrics {
    /// JSON encoding of the full per-execution accounting.
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("rounds".into(), Json::UInt(u64::from(self.rounds))),
            ("msgs_sent".into(), Json::UInt(self.msgs_sent)),
            ("msgs_delivered".into(), Json::UInt(self.msgs_delivered)),
            ("bits_sent".into(), Json::UInt(self.bits_sent)),
            (
                "max_edge_bits_per_round".into(),
                Json::UInt(self.max_edge_bits_per_round),
            ),
            (
                "per_round".into(),
                Json::Arr(
                    self.per_round
                        .iter()
                        .map(|rm| {
                            Json::Obj(vec![
                                ("sent".into(), Json::UInt(rm.sent)),
                                ("delivered".into(), Json::UInt(rm.delivered)),
                                ("bits_sent".into(), Json::UInt(rm.bits_sent)),
                                ("crashes".into(), Json::UInt(u64::from(rm.crashes))),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "crashes".into(),
                Json::Arr(
                    self.crashes
                        .iter()
                        .map(|&(node, round)| {
                            Json::Arr(vec![
                                Json::UInt(u64::from(node.0)),
                                Json::UInt(u64::from(round)),
                            ])
                        })
                        .collect(),
                ),
            ),
            ("msgs_suppressed".into(), Json::UInt(self.msgs_suppressed)),
            ("msgs_lost_edges".into(), Json::UInt(self.msgs_lost_edges)),
            ("wire_bytes".into(), Json::UInt(self.wire_bytes)),
        ])
    }

    /// Decodes metrics from their [`Metrics::to_json`] form.
    pub fn from_json(v: &Json) -> Result<Self, JsonError> {
        let per_round = v
            .field("per_round")?
            .as_arr()?
            .iter()
            .map(|rm| {
                Ok(RoundMetrics {
                    sent: rm.field("sent")?.as_u64()?,
                    delivered: rm.field("delivered")?.as_u64()?,
                    bits_sent: rm.field("bits_sent")?.as_u64()?,
                    crashes: rm.field("crashes")?.as_u64()? as u32,
                })
            })
            .collect::<Result<Vec<_>, JsonError>>()?;
        let crashes = v
            .field("crashes")?
            .as_arr()?
            .iter()
            .map(|pair| match pair.as_arr()? {
                [node, round] => Ok((NodeId(node.as_u64()? as u32), round.as_u64()? as u32)),
                _ => Err(JsonError::new("crash entry must be a [node, round] pair")),
            })
            .collect::<Result<Vec<_>, JsonError>>()?;
        Ok(Metrics {
            rounds: v.field("rounds")?.as_u64()? as u32,
            msgs_sent: v.field("msgs_sent")?.as_u64()?,
            msgs_delivered: v.field("msgs_delivered")?.as_u64()?,
            bits_sent: v.field("bits_sent")?.as_u64()?,
            max_edge_bits_per_round: v.field("max_edge_bits_per_round")?.as_u64()?,
            per_round,
            crashes,
            msgs_suppressed: v.field("msgs_suppressed")?.as_u64()?,
            msgs_lost_edges: v.field("msgs_lost_edges")?.as_u64()?,
            wire_bytes: v.field("wire_bytes")?.as_u64()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::prelude::*;
    use rand::rngs::SmallRng;

    #[test]
    fn scalars_round_trip() {
        for text in ["null", "true", "false", "0", "-7", "3.5", "\"hi\\n\""] {
            let v = Json::parse(text).unwrap();
            assert_eq!(Json::parse(&v.render()).unwrap(), v, "{text}");
        }
    }

    #[test]
    fn full_u64_integers_stay_exact() {
        let seed = u64::MAX - 12345;
        let v = Json::parse(&Json::UInt(seed).render()).unwrap();
        assert_eq!(v.as_u64().unwrap(), seed);
    }

    #[test]
    fn nested_structures_round_trip() {
        let text = r#"{"a":[1,2,{"b":null}],"c":"x\"y","d":-1,"e":0.25}"#;
        let v = Json::parse(text).unwrap();
        assert_eq!(Json::parse(&v.render()).unwrap(), v);
        assert_eq!(v.field("d").unwrap(), &Json::Int(-1));
        assert_eq!(v.get("missing"), None);
        assert!(v.field("missing").is_err());
    }

    #[test]
    fn trailing_garbage_is_rejected() {
        assert!(Json::parse("{} x").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("\"open").is_err());
        assert!(Json::parse("nul").is_err());
    }

    fn random_filter(rng: &mut SmallRng) -> DeliveryFilter {
        match rng.random_range(0..5u8) {
            0 => DeliveryFilter::DeliverAll,
            1 => DeliveryFilter::DropAll,
            2 => DeliveryFilter::KeepFirst(rng.random_range(0..64)),
            3 => DeliveryFilter::DeliverEachWithProbability(
                f64::from(rng.random_range(0..=100u32)) / 100.0,
            ),
            _ => DeliveryFilter::KeepToDestinations(
                (0..rng.random_range(0..6u32))
                    .map(|_| NodeId(rng.random_range(0..32)))
                    .collect(),
            ),
        }
    }

    /// The satellite's round-trip property: arbitrary plans survive
    /// serialisation, so schedules are portable across sim and cluster.
    #[test]
    fn fault_plan_round_trip_property() {
        let mut rng = SmallRng::seed_from_u64(2024);
        for _ in 0..200 {
            let entries: Vec<_> = (0..rng.random_range(0..10u32))
                .map(|_| {
                    (
                        NodeId(rng.random_range(0..32)),
                        rng.random_range(0..20u32),
                        random_filter(&mut rng),
                    )
                })
                .collect();
            let plan = FaultPlan::from_entries(entries);
            let json = plan.to_json().render();
            let back = FaultPlan::from_json(&Json::parse(&json).unwrap()).unwrap();
            assert_eq!(back.entries(), plan.entries(), "{json}");
        }
    }

    #[test]
    fn sim_config_round_trips_including_options() {
        let mut cfg = SimConfig::new(48)
            .seed(0xDEAD_BEEF_DEAD_BEEF)
            .max_rounds(33);
        cfg.kt1 = true;
        cfg.record_trace = true;
        cfg.congest_bits = Some(96);
        cfg.send_cap = Some(5);
        cfg.edge_failure_prob = 0.125;
        let back = SimConfig::from_json(&Json::parse(&cfg.to_json().render()).unwrap()).unwrap();
        assert_eq!(back.n, cfg.n);
        assert_eq!(back.seed, cfg.seed);
        assert_eq!(back.max_rounds, cfg.max_rounds);
        assert_eq!(back.kt1, cfg.kt1);
        assert_eq!(back.record_trace, cfg.record_trace);
        assert_eq!(back.congest_bits, cfg.congest_bits);
        assert_eq!(back.send_cap, cfg.send_cap);
        assert_eq!(back.edge_failure_prob, cfg.edge_failure_prob);
        // A plain default config round-trips too (None options), and its
        // rendering carries NO topology field — the pre-topology schema,
        // which keeps committed record ids stable.
        let plain = SimConfig::new(8);
        let text = plain.to_json().render();
        assert!(
            !text.contains("topology"),
            "complete graph must stay schema-invisible: {text}"
        );
        let back = SimConfig::from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back.send_cap, None);
        assert_eq!(back.congest_bits, None);
        assert!(back.topology.is_complete());
    }

    #[test]
    fn sim_config_round_trips_topologies() {
        use crate::topology::Topology;
        let topos = [
            Topology::DiameterTwo { clusters: 5 },
            Topology::RandomRegular { d: 4 },
            Topology::Explicit {
                adjacency: std::sync::Arc::new(vec![vec![1], vec![0, 2], vec![1]]),
            },
        ];
        for topo in topos {
            let n = if matches!(topo, Topology::Explicit { .. }) {
                3
            } else {
                16
            };
            let cfg = SimConfig::new(n).seed(7).topology(topo.clone());
            let back =
                SimConfig::from_json(&Json::parse(&cfg.to_json().render()).unwrap()).unwrap();
            assert_eq!(back.topology, topo);
        }
        // An invalid topology is rejected at decode time by validate().
        let text = r#"{"n":4,"seed":0,"max_rounds":8,"kt1":false,"record_trace":false,
            "congest_bits":null,"send_cap":null,"edge_failure_prob":0.0,
            "topology":{"kind":"random_regular","d":9}}"#;
        assert!(SimConfig::from_json(&Json::parse(text).unwrap()).is_err());
    }

    /// Encode→decode identity for arbitrary summaries, including floats
    /// with no short decimal form: `{:?}` rendering is shortest-round-trip,
    /// so equality here is bit-exact.
    #[test]
    fn summary_round_trip_property() {
        let mut rng = SmallRng::seed_from_u64(7171);
        for _ in 0..200 {
            let values: Vec<f64> = (0..rng.random_range(1..40u32))
                .map(|_| rng.random_range(0..1u64 << 53) as f64 / 7.0)
                .collect();
            let s = Summary::of(&values);
            let back = Summary::from_json(&Json::parse(&s.to_json().render()).unwrap()).unwrap();
            assert_eq!(back, s);
        }
    }

    fn random_histogram(rng: &mut SmallRng) -> LogHistogram {
        let mut h = LogHistogram::new();
        for _ in 0..rng.random_range(0..50u32) {
            // Bias toward huge samples so the u128 sum overflows u64.
            h.record(rng.random::<u64>() >> rng.random_range(0..64u32));
        }
        h
    }

    #[test]
    fn log_histogram_round_trip_property() {
        let mut rng = SmallRng::seed_from_u64(9292);
        for _ in 0..200 {
            let h = random_histogram(&mut rng);
            let back =
                LogHistogram::from_json(&Json::parse(&h.to_json().render()).unwrap()).unwrap();
            assert_eq!(back, h);
        }
        // The empty histogram (min = u64::MAX sentinel) survives too.
        let empty = LogHistogram::new();
        let back = LogHistogram::from_json(&empty.to_json()).unwrap();
        assert_eq!(back, empty);
        assert_eq!(back.min(), None);
    }

    #[test]
    fn log_histogram_schema_violations_are_rejected() {
        let mut h = LogHistogram::new();
        h.record(12);
        let Json::Obj(mut fields) = h.to_json() else {
            panic!("histogram must encode as object")
        };
        // Corrupt the total so it disagrees with the buckets.
        for (k, v) in &mut fields {
            if k == "total" {
                *v = Json::UInt(99);
            }
        }
        assert!(LogHistogram::from_json(&Json::Obj(fields)).is_err());
        let short = Json::parse(r#"{"counts":[0,1],"total":1,"sum":"1","min":1,"max":1}"#).unwrap();
        assert!(LogHistogram::from_json(&short).is_err());
    }

    fn random_metrics(rng: &mut SmallRng) -> Metrics {
        let mut m = Metrics::new();
        m.rounds = rng.random_range(0..200);
        m.msgs_sent = rng.random();
        m.msgs_delivered = rng.random();
        m.bits_sent = rng.random();
        m.max_edge_bits_per_round = rng.random();
        m.per_round = (0..rng.random_range(0..8u32))
            .map(|_| RoundMetrics {
                sent: rng.random_range(0..1000),
                delivered: rng.random_range(0..1000),
                bits_sent: rng.random_range(0..64000),
                crashes: rng.random_range(0..5),
            })
            .collect();
        m.crashes = (0..rng.random_range(0..6u32))
            .map(|_| (NodeId(rng.random_range(0..64)), rng.random_range(0..30u32)))
            .collect();
        m.msgs_suppressed = rng.random_range(0..100);
        m.msgs_lost_edges = rng.random_range(0..100);
        m.wire_bytes = rng.random();
        m
    }

    #[test]
    fn metrics_round_trip_property() {
        let mut rng = SmallRng::seed_from_u64(31337);
        for _ in 0..200 {
            let m = random_metrics(&mut rng);
            let back = Metrics::from_json(&Json::parse(&m.to_json().render()).unwrap()).unwrap();
            assert_eq!(back, m);
        }
    }

    #[test]
    fn service_metrics_round_trip_property() {
        let mut rng = SmallRng::seed_from_u64(7117);
        for _ in 0..200 {
            let mut s = ServiceMetrics::new();
            for _ in 0..rng.random_range(0..12u32) {
                let leader = rng
                    .random_bool(0.8)
                    .then(|| rng.random_range(0..1u64 << 40));
                s.record_election(leader, rng.random_range(1..200));
                s.record_serving_window(rng.random_range(0..500));
            }
            let back =
                ServiceMetrics::from_json(&Json::parse(&s.to_json().render()).unwrap()).unwrap();
            assert_eq!(back, s);
        }
        // Fresh (no leader yet, null current_leader) survives too.
        let empty = ServiceMetrics::new();
        let back = ServiceMetrics::from_json(&empty.to_json()).unwrap();
        assert_eq!(back, empty);
        assert_eq!(back.availability(), None);
    }

    #[test]
    fn invalid_configs_fail_schema_validation() {
        let v = Json::parse(r#"{"n":1,"seed":0,"max_rounds":4,"kt1":false,"record_trace":false,"congest_bits":null,"send_cap":null,"edge_failure_prob":0.0}"#).unwrap();
        assert!(SimConfig::from_json(&v).is_err());
        let bad_filter = Json::parse(r#"{"kind":"martian"}"#).unwrap();
        assert!(DeliveryFilter::from_json(&bad_filter).is_err());
    }
}
