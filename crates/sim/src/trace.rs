//! Execution traces: the raw material of the paper's lower-bound arguments.
//!
//! Section IV-B defines the *communication graph* `C^r`: a directed graph
//! with an edge `u → v` iff `u` sent a message to `v` in some round `≤ r`.
//! The influence-cloud machinery of Theorems 4.2 and 5.2 is built entirely
//! on top of this graph. When tracing is enabled
//! ([`crate::engine::SimConfig::record_trace`]) the engine records one
//! [`TraceEvent`] per message so that `ftc-lowerbound` can rebuild `C^r`
//! for any `r` and analyse initiators, influence clouds and deciding trees.

use crate::ids::{NodeId, Round};

/// One message send, as observed by the engine.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceEvent {
    /// Round in which the message was sent.
    pub round: Round,
    /// Sender.
    pub src: NodeId,
    /// Receiver.
    pub dst: NodeId,
    /// Whether the message survived the sender's crash filter and was
    /// delivered. The paper's influence relation is about *received*
    /// messages, so analyses usually restrict to `delivered` events.
    pub delivered: bool,
    /// Payload size in bits.
    pub bits: u32,
}

/// The ordered list of all message events of one execution.
#[derive(Clone, Debug, Default)]
pub struct Trace {
    events: Vec<TraceEvent>,
    n: u32,
}

impl Trace {
    /// An empty trace for an `n`-node network.
    pub fn new(n: u32) -> Self {
        Trace {
            events: Vec::new(),
            n,
        }
    }

    /// Network size this trace belongs to.
    pub fn n(&self) -> u32 {
        self.n
    }

    pub(crate) fn push(&mut self, ev: TraceEvent) {
        self.events.push(ev);
    }

    /// All events in send order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    pub(crate) fn events_mut(&mut self) -> &mut [TraceEvent] {
        &mut self.events
    }

    /// Events of round `r` only.
    pub fn round_events(&self, r: Round) -> impl Iterator<Item = &TraceEvent> + '_ {
        self.events.iter().filter(move |e| e.round == r)
    }

    /// Delivered events up to and including round `r` — the edge set of the
    /// communication graph `C^r` (restricted to received messages).
    pub fn delivered_up_to(&self, r: Round) -> impl Iterator<Item = &TraceEvent> + '_ {
        self.events
            .iter()
            .filter(move |e| e.round <= r && e.delivered)
    }

    /// Total number of recorded events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether no messages were recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The last round with any event, or `None` for a silent execution.
    pub fn last_round(&self) -> Option<Round> {
        self.events.iter().map(|e| e.round).max()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(round: Round, src: u32, dst: u32, delivered: bool) -> TraceEvent {
        TraceEvent {
            round,
            src: NodeId(src),
            dst: NodeId(dst),
            delivered,
            bits: 1,
        }
    }

    #[test]
    fn filters_by_round_and_delivery() {
        let mut t = Trace::new(4);
        t.push(ev(0, 0, 1, true));
        t.push(ev(0, 1, 2, false));
        t.push(ev(1, 2, 3, true));
        t.push(ev(2, 3, 0, true));

        assert_eq!(t.len(), 4);
        assert_eq!(t.round_events(0).count(), 2);
        let c1: Vec<_> = t.delivered_up_to(1).collect();
        assert_eq!(c1.len(), 2);
        assert!(c1.iter().all(|e| e.delivered));
        assert_eq!(t.last_round(), Some(2));
    }

    #[test]
    fn empty_trace_reports_no_rounds() {
        let t = Trace::new(3);
        assert!(t.is_empty());
        assert_eq!(t.last_round(), None);
    }
}
