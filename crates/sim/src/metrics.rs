//! Message, bit, round and congestion accounting.
//!
//! The paper's headline quantities are *message complexity* (total messages
//! sent during the execution) and *round complexity*; Remark 1 additionally
//! discusses the cost in *bits*. [`Metrics`] records all three, per round
//! and in total, plus the maximum number of bits pushed through a single
//! edge in a single round — the quantity the CONGEST model bounds by
//! `O(log n)`.

use crate::ids::{NodeId, Round};

/// Counters for a single round.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RoundMetrics {
    /// Messages queued by alive nodes this round (counted even if the
    /// sender's crash then suppressed them — the algorithm paid for them).
    pub sent: u64,
    /// Messages actually delivered at the end of the round.
    pub delivered: u64,
    /// Bits corresponding to `sent`.
    pub bits_sent: u64,
    /// Nodes that crashed this round.
    pub crashes: u32,
}

/// Full accounting of one execution.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Metrics {
    /// Rounds actually executed (may be fewer than `max_rounds` when the
    /// protocol quiesced early).
    pub rounds: u32,
    /// Total messages sent (the paper's message complexity).
    pub msgs_sent: u64,
    /// Total messages delivered.
    pub msgs_delivered: u64,
    /// Total bits sent (Remark 1's bit complexity).
    pub bits_sent: u64,
    /// Largest number of bits carried by any single **directed** edge in
    /// any single round (`a → b` and `b → a` are accounted separately,
    /// matching [`crate::engine::SimConfig::congest_bits`]). CONGEST
    /// compliance means this stays `O(log n)`.
    pub max_edge_bits_per_round: u64,
    /// Per-round breakdown.
    pub per_round: Vec<RoundMetrics>,
    /// `(node, round)` crash events in order of occurrence.
    pub crashes: Vec<(NodeId, Round)>,
    /// Messages a node wanted to send but suppressed by the per-node
    /// send budget ([`crate::engine::SimConfig::send_cap`]).
    pub msgs_suppressed: u64,
    /// Messages lost to dead edges
    /// ([`crate::engine::SimConfig::edge_failure_prob`]).
    pub msgs_lost_edges: u64,
    /// Bytes actually pushed onto the wire (frame headers, encoded
    /// payloads, round markers). Only real transports (`ftc-net`) set
    /// this; the in-process engine leaves it at 0 — the model's cost
    /// measures are `msgs_sent` / `bits_sent`.
    pub wire_bytes: u64,
}

impl Metrics {
    /// Creates empty metrics.
    pub fn new() -> Self {
        Metrics::default()
    }

    pub(crate) fn record_round(&mut self, rm: RoundMetrics) {
        self.rounds += 1;
        self.msgs_sent += rm.sent;
        self.msgs_delivered += rm.delivered;
        self.bits_sent += rm.bits_sent;
        self.per_round.push(rm);
    }

    pub(crate) fn record_crash(&mut self, node: NodeId, round: Round) {
        self.crashes.push((node, round));
    }

    pub(crate) fn record_edge_bits(&mut self, bits: u64) {
        self.max_edge_bits_per_round = self.max_edge_bits_per_round.max(bits);
    }

    /// Messages lost to crashes (sent but never delivered).
    pub fn msgs_lost(&self) -> u64 {
        self.msgs_sent - self.msgs_delivered
    }

    /// Number of crash events.
    pub fn crash_count(&self) -> usize {
        self.crashes.len()
    }
}

/// A base-2 logarithmic histogram of `u64` samples.
///
/// Bucket `0` holds the value `0`; bucket `i ≥ 1` holds values whose
/// bit-length is `i`, i.e. the range `[2^(i-1), 2^i)`. Message counts span
/// many orders of magnitude across protocols (`O(n^1.5 log^1.5 n)` vs the
/// `Ω(n^2)` baselines), so constant relative resolution is the right shape;
/// exact min/max/sum ride along for headline numbers.
///
/// Histograms over disjoint trial sets [`merge`](LogHistogram::merge)
/// bucket-wise, which is what makes per-worker aggregation order-free.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LogHistogram {
    pub(crate) counts: [u64; 65],
    pub(crate) total: u64,
    pub(crate) sum: u128,
    pub(crate) min: u64,
    pub(crate) max: u64,
}

impl Default for LogHistogram {
    fn default() -> Self {
        LogHistogram::new()
    }
}

impl LogHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        LogHistogram {
            counts: [0; 65],
            total: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    fn bucket(value: u64) -> usize {
        match value.checked_ilog2() {
            Some(b) => b as usize + 1,
            None => 0,
        }
    }

    /// Adds one sample.
    pub fn record(&mut self, value: u64) {
        self.counts[Self::bucket(value)] += 1;
        self.total += 1;
        self.sum += u128::from(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Folds another histogram into this one. Since buckets add and
    /// min/max/sum are associative-commutative, merge order never affects
    /// the result.
    pub fn merge(&mut self, other: &LogHistogram) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
        self.total += other.total;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Smallest sample, or `None` when empty.
    pub fn min(&self) -> Option<u64> {
        (self.total > 0).then_some(self.min)
    }

    /// Largest sample, or `None` when empty.
    pub fn max(&self) -> Option<u64> {
        (self.total > 0).then_some(self.max)
    }

    /// Exact mean of the samples, or `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        (self.total > 0).then(|| self.sum as f64 / self.total as f64)
    }

    /// The `q`-quantile (`0.0 ..= 1.0`) to bucket resolution: the upper
    /// edge of the bucket containing the quantile sample (clamped to the
    /// exact max). `None` when empty.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.total == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        // Rank of the quantile sample, 1-based nearest-rank.
        let rank = ((q * self.total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                let upper = if i == 0 {
                    0
                } else if i >= 64 {
                    u64::MAX
                } else {
                    (1u64 << i) - 1
                };
                return Some(upper.min(self.max).max(self.min));
            }
        }
        Some(self.max)
    }

    /// The 99th percentile to bucket resolution. `None` when empty.
    pub fn p99(&self) -> Option<u64> {
        self.quantile(0.99)
    }

    /// The 99.9th percentile to bucket resolution. `None` when empty.
    /// Tail latencies (time-to-new-leader, request wait) live here.
    pub fn p999(&self) -> Option<u64> {
        self.quantile(0.999)
    }
}

/// Height-aware accounting for a long-lived leader service (`ftc-serve`).
///
/// A service runs repeated election instances at monotonically increasing
/// *heights*; between elections it serves requests under the current
/// leader. Two service-level qualities fall out of that structure and are
/// tracked here: **time-to-new-leader** (how many rounds each election
/// took — the outage window after a leader crash) and **availability**
/// (the fraction of service rounds during which a settled leader was in
/// place). Per-height message/round costs stay in the per-run [`Metrics`];
/// this struct is the cross-height layer on top.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ServiceMetrics {
    /// Election instances completed (successful or not).
    pub heights: u32,
    /// Heights whose election ended with no agreed alive leader.
    pub failed_elections: u32,
    /// Heights whose winner differs from the previous height's winner
    /// (the first elected height counts as a change from "no leader").
    pub leader_changes: u32,
    /// Rounds each *successful* election took, start to agreed leader —
    /// the time-to-new-leader distribution.
    pub ttnl_rounds: LogHistogram,
    /// Service rounds spent with a settled leader in place.
    pub available_rounds: u64,
    /// All service rounds: election windows plus serving windows.
    pub total_rounds: u64,
    /// The winning rank of the last successful election, if any.
    pub current_leader: Option<u64>,
}

impl ServiceMetrics {
    /// Empty accounting: no heights run yet.
    pub fn new() -> Self {
        ServiceMetrics::default()
    }

    /// Folds in one completed election: its winner (`None` for a failed
    /// election) and the rounds it consumed. Election rounds count as
    /// unavailable — the service cannot route requests while it has no
    /// settled leader.
    pub fn record_election(&mut self, leader: Option<u64>, rounds: u32) {
        self.heights += 1;
        self.total_rounds += u64::from(rounds);
        match leader {
            Some(rank) => {
                self.ttnl_rounds.record(u64::from(rounds));
                if self.current_leader != Some(rank) {
                    self.leader_changes += 1;
                }
                self.current_leader = Some(rank);
            }
            None => self.failed_elections += 1,
        }
    }

    /// Folds in a serving window: `rounds` rounds during which the current
    /// leader handled requests.
    pub fn record_serving_window(&mut self, rounds: u64) {
        self.available_rounds += rounds;
        self.total_rounds += rounds;
    }

    /// Fraction of service rounds with a settled leader, or `None` before
    /// any rounds ran.
    pub fn availability(&self) -> Option<f64> {
        (self.total_rounds > 0).then(|| self.available_rounds as f64 / self.total_rounds as f64)
    }
}

/// Order-free aggregation of [`Metrics`] across a batch of trials.
///
/// Parallel trial runners produce per-trial `Metrics` in nondeterministic
/// *completion* order; every operation here is commutative and associative,
/// so aggregates built per worker and [`merge`](MetricsAggregate::merge)d
/// equal the aggregate a sequential loop would build.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct MetricsAggregate {
    /// Trials folded in.
    pub trials: u64,
    /// Distribution of per-trial total messages sent.
    pub msgs_sent: LogHistogram,
    /// Distribution of per-trial total bits sent.
    pub bits_sent: LogHistogram,
    /// Distribution of per-trial executed rounds.
    pub rounds: LogHistogram,
    /// Distribution of per-trial crash counts.
    pub crashes: LogHistogram,
    /// Distribution of per-trial wire bytes (all-zero for engine runs;
    /// real transports feed actual per-edge byte accounting in here).
    pub wire_bytes: LogHistogram,
    /// Largest per-edge-per-round bit load seen in any trial.
    pub max_edge_bits_per_round: u64,
    /// Trials that violated the configured CONGEST bound at least once.
    pub congest_violating_trials: u64,
    /// Total CONGEST violations across all trials.
    pub congest_violations: u64,
}

impl MetricsAggregate {
    /// An empty aggregate.
    pub fn new() -> Self {
        MetricsAggregate::default()
    }

    /// Folds in one trial's metrics; `congest_violations` comes from the
    /// engine's [`RunResult`](crate::engine::RunResult), which checks the
    /// bound as it runs.
    pub fn record(&mut self, m: &Metrics, congest_violations: u64) {
        self.trials += 1;
        self.msgs_sent.record(m.msgs_sent);
        self.bits_sent.record(m.bits_sent);
        self.rounds.record(u64::from(m.rounds));
        self.crashes.record(m.crash_count() as u64);
        self.wire_bytes.record(m.wire_bytes);
        self.max_edge_bits_per_round = self.max_edge_bits_per_round.max(m.max_edge_bits_per_round);
        self.congest_violating_trials += u64::from(congest_violations > 0);
        self.congest_violations += congest_violations;
    }

    /// Folds another aggregate into this one (commutative, associative).
    pub fn merge(&mut self, other: &MetricsAggregate) {
        self.trials += other.trials;
        self.msgs_sent.merge(&other.msgs_sent);
        self.bits_sent.merge(&other.bits_sent);
        self.rounds.merge(&other.rounds);
        self.crashes.merge(&other.crashes);
        self.wire_bytes.merge(&other.wire_bytes);
        self.max_edge_bits_per_round = self
            .max_edge_bits_per_round
            .max(other.max_edge_bits_per_round);
        self.congest_violating_trials += other.congest_violating_trials;
        self.congest_violations += other.congest_violations;
    }

    /// Builds an aggregate from per-trial `(Metrics, congest_violations)`
    /// pairs in one pass.
    pub fn collect<'a, I>(iter: I) -> Self
    where
        I: IntoIterator<Item = (&'a Metrics, u64)>,
    {
        let mut agg = MetricsAggregate::new();
        for (m, v) in iter {
            agg.record(m, v);
        }
        agg
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_accumulate_across_rounds() {
        let mut m = Metrics::new();
        m.record_round(RoundMetrics {
            sent: 10,
            delivered: 8,
            bits_sent: 100,
            crashes: 1,
        });
        m.record_round(RoundMetrics {
            sent: 5,
            delivered: 5,
            bits_sent: 50,
            crashes: 0,
        });
        assert_eq!(m.rounds, 2);
        assert_eq!(m.msgs_sent, 15);
        assert_eq!(m.msgs_delivered, 13);
        assert_eq!(m.msgs_lost(), 2);
        assert_eq!(m.bits_sent, 150);
        assert_eq!(m.per_round.len(), 2);
    }

    #[test]
    fn edge_bits_tracks_maximum() {
        let mut m = Metrics::new();
        m.record_edge_bits(12);
        m.record_edge_bits(40);
        m.record_edge_bits(7);
        assert_eq!(m.max_edge_bits_per_round, 40);
    }

    #[test]
    fn crashes_are_recorded_in_order() {
        let mut m = Metrics::new();
        m.record_crash(NodeId(3), 1);
        m.record_crash(NodeId(1), 2);
        assert_eq!(m.crashes, vec![(NodeId(3), 1), (NodeId(1), 2)]);
        assert_eq!(m.crash_count(), 2);
    }

    #[test]
    fn log_histogram_buckets_by_bit_length() {
        let mut h = LogHistogram::new();
        for v in [0u64, 1, 2, 3, 4, 7, 8, u64::MAX] {
            h.record(v);
        }
        assert_eq!(h.count(), 8);
        assert_eq!(h.min(), Some(0));
        assert_eq!(h.max(), Some(u64::MAX));
        assert_eq!(h.counts[0], 1); // value 0
        assert_eq!(h.counts[1], 1); // value 1
        assert_eq!(h.counts[2], 2); // values 2,3
        assert_eq!(h.counts[3], 2); // values 4,7
        assert_eq!(h.counts[4], 1); // value 8
        assert_eq!(h.counts[64], 1); // u64::MAX
    }

    #[test]
    fn log_histogram_quantiles_bracket_the_data() {
        let mut h = LogHistogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        assert_eq!(h.quantile(0.0), Some(1));
        assert_eq!(h.quantile(1.0), Some(1000));
        let median = h.quantile(0.5).unwrap();
        // Bucket resolution: the true median 500 lies in [256, 512).
        assert!((256..=511).contains(&median), "median bucket edge {median}");
        assert!(LogHistogram::new().quantile(0.5).is_none());
        // Tail accessors: the true p99 (990) and p999 (1000) both fall in
        // the [512, 1024) bucket, whose upper edge is clamped to max=1000.
        assert_eq!(h.p99(), Some(1000));
        assert_eq!(h.p999(), Some(1000));
        assert!(LogHistogram::new().p99().is_none());
        assert!(LogHistogram::new().p999().is_none());
    }

    #[test]
    fn histogram_merge_equals_sequential_record() {
        let values = [3u64, 0, 17, 17, 92, 4096, 5];
        let mut whole = LogHistogram::new();
        for &v in &values {
            whole.record(v);
        }
        let (lo, hi) = values.split_at(3);
        let mut a = LogHistogram::new();
        let mut b = LogHistogram::new();
        lo.iter().for_each(|&v| a.record(v));
        hi.iter().for_each(|&v| b.record(v));
        a.merge(&b);
        assert_eq!(a, whole);
    }

    #[test]
    fn service_metrics_track_heights_and_availability() {
        let mut s = ServiceMetrics::new();
        assert_eq!(s.availability(), None);
        s.record_election(Some(42), 12); // first leader: a change
        s.record_serving_window(88);
        s.record_election(Some(42), 10); // re-elected: not a change
        s.record_election(None, 20); // failed election
        s.record_election(Some(7), 15); // new leader: a change
        assert_eq!(s.heights, 4);
        assert_eq!(s.failed_elections, 1);
        assert_eq!(s.leader_changes, 2);
        assert_eq!(s.current_leader, Some(7));
        assert_eq!(s.ttnl_rounds.count(), 3);
        assert_eq!(s.ttnl_rounds.max(), Some(15));
        // 88 serving rounds out of 88 + 12 + 10 + 20 + 15 total.
        assert_eq!(s.total_rounds, 145);
        let avail = s.availability().unwrap();
        assert!((avail - 88.0 / 145.0).abs() < 1e-12, "{avail}");
    }

    #[test]
    fn aggregate_merge_is_order_free() {
        let trial = |msgs: u64, rounds: u32, viol: u64| {
            let mut m = Metrics::new();
            m.msgs_sent = msgs;
            m.bits_sent = msgs * 64;
            m.rounds = rounds;
            (m, viol)
        };
        let trials = [trial(10, 2, 0), trial(500, 5, 3), trial(80, 3, 1)];
        let seq = MetricsAggregate::collect(trials.iter().map(|(m, v)| (m, *v)));
        // Fold in a different order via two partial aggregates.
        let mut left = MetricsAggregate::new();
        left.record(&trials[2].0, trials[2].1);
        let mut right = MetricsAggregate::new();
        right.record(&trials[0].0, trials[0].1);
        right.record(&trials[1].0, trials[1].1);
        left.merge(&right);
        assert_eq!(left, seq);
        assert_eq!(seq.trials, 3);
        assert_eq!(seq.congest_violations, 4);
        assert_eq!(seq.congest_violating_trials, 2);
        assert_eq!(seq.msgs_sent.max(), Some(500));
    }
}
