//! Message, bit, round and congestion accounting.
//!
//! The paper's headline quantities are *message complexity* (total messages
//! sent during the execution) and *round complexity*; Remark 1 additionally
//! discusses the cost in *bits*. [`Metrics`] records all three, per round
//! and in total, plus the maximum number of bits pushed through a single
//! edge in a single round — the quantity the CONGEST model bounds by
//! `O(log n)`.

use serde::{Deserialize, Serialize};

use crate::ids::{NodeId, Round};

/// Counters for a single round.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RoundMetrics {
    /// Messages queued by alive nodes this round (counted even if the
    /// sender's crash then suppressed them — the algorithm paid for them).
    pub sent: u64,
    /// Messages actually delivered at the end of the round.
    pub delivered: u64,
    /// Bits corresponding to `sent`.
    pub bits_sent: u64,
    /// Nodes that crashed this round.
    pub crashes: u32,
}

/// Full accounting of one execution.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct Metrics {
    /// Rounds actually executed (may be fewer than `max_rounds` when the
    /// protocol quiesced early).
    pub rounds: u32,
    /// Total messages sent (the paper's message complexity).
    pub msgs_sent: u64,
    /// Total messages delivered.
    pub msgs_delivered: u64,
    /// Total bits sent (Remark 1's bit complexity).
    pub bits_sent: u64,
    /// Largest number of bits carried by any single edge in any single
    /// round. CONGEST compliance means this stays `O(log n)`.
    pub max_edge_bits_per_round: u64,
    /// Per-round breakdown.
    pub per_round: Vec<RoundMetrics>,
    /// `(node, round)` crash events in order of occurrence.
    pub crashes: Vec<(NodeId, Round)>,
    /// Messages a node wanted to send but suppressed by the per-node
    /// send budget ([`crate::engine::SimConfig::send_cap`]).
    pub msgs_suppressed: u64,
    /// Messages lost to dead edges
    /// ([`crate::engine::SimConfig::edge_failure_prob`]).
    pub msgs_lost_edges: u64,
}

impl Metrics {
    /// Creates empty metrics.
    pub fn new() -> Self {
        Metrics::default()
    }

    pub(crate) fn record_round(&mut self, rm: RoundMetrics) {
        self.rounds += 1;
        self.msgs_sent += rm.sent;
        self.msgs_delivered += rm.delivered;
        self.bits_sent += rm.bits_sent;
        self.per_round.push(rm);
    }

    pub(crate) fn record_crash(&mut self, node: NodeId, round: Round) {
        self.crashes.push((node, round));
    }

    pub(crate) fn record_edge_bits(&mut self, bits: u64) {
        self.max_edge_bits_per_round = self.max_edge_bits_per_round.max(bits);
    }

    /// Messages lost to crashes (sent but never delivered).
    pub fn msgs_lost(&self) -> u64 {
        self.msgs_sent - self.msgs_delivered
    }

    /// Number of crash events.
    pub fn crash_count(&self) -> usize {
        self.crashes.len()
    }
}

// NodeId is serialised as its raw u32 for the benefit of the bench harness's
// result rows.
impl Serialize for NodeId {
    fn serialize<S: serde::Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_u32(self.0)
    }
}

impl<'de> Deserialize<'de> for NodeId {
    fn deserialize<D: serde::Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        u32::deserialize(d).map(NodeId)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_accumulate_across_rounds() {
        let mut m = Metrics::new();
        m.record_round(RoundMetrics {
            sent: 10,
            delivered: 8,
            bits_sent: 100,
            crashes: 1,
        });
        m.record_round(RoundMetrics {
            sent: 5,
            delivered: 5,
            bits_sent: 50,
            crashes: 0,
        });
        assert_eq!(m.rounds, 2);
        assert_eq!(m.msgs_sent, 15);
        assert_eq!(m.msgs_delivered, 13);
        assert_eq!(m.msgs_lost(), 2);
        assert_eq!(m.bits_sent, 150);
        assert_eq!(m.per_round.len(), 2);
    }

    #[test]
    fn edge_bits_tracks_maximum() {
        let mut m = Metrics::new();
        m.record_edge_bits(12);
        m.record_edge_bits(40);
        m.record_edge_bits(7);
        assert_eq!(m.max_edge_bits_per_round, 40);
    }

    #[test]
    fn crashes_are_recorded_in_order() {
        let mut m = Metrics::new();
        m.record_crash(NodeId(3), 1);
        m.record_crash(NodeId(1), 2);
        assert_eq!(m.crashes, vec![(NodeId(3), 1), (NodeId(1), 2)]);
        assert_eq!(m.crash_count(), 2);
    }
}
