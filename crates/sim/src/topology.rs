//! Network topologies: which graph the nodes are wired into.
//!
//! The paper states its bounds on the complete graph, but ROADMAP item
//! 3(a) asks for the topology × adversary matrix the related work hands
//! us directly — diameter-two graphs (Chatterjee–Pandurangan–Robinson,
//! "The Complexity of Leader Election: A Chasm at Diameter Two") and
//! bounded-degree general graphs (Kutten et al., "Sublinear Bounds for
//! Randomized Leader Election"). [`Topology`] makes the graph an explicit
//! part of [`crate::engine::SimConfig`]:
//!
//! * [`Topology::Complete`] — the paper's model, and the default. Runs
//!   are bit-identical to the pre-topology engine: the same per-node port
//!   permutations, the same RNG draws, the same record ids.
//! * [`Topology::DiameterTwo`] — a hub graph: nodes `0..clusters` are
//!   hubs adjacent to everyone; the rest are adjacent to exactly the
//!   hubs. Diameter 2 for every `clusters ≥ 1` (any two non-hubs meet at
//!   a hub), the canonical shape of the CPR chasm results.
//! * [`Topology::RandomRegular`] — a seeded random `d`-regular simple
//!   graph via the configuration (pairing) model with deterministic
//!   switch repair. Connected with high probability for `d ≥ 3`.
//! * [`Topology::Explicit`] — an arbitrary adjacency escape hatch for
//!   tests and hand-built scenarios.
//!
//! Everything downstream is neighbour-generic: port maps permute each
//! node's *actual* neighbours ([`crate::ports::PortMap`]), the engine
//! and [`crate::round::EdgeFates`] only ever touch real edges, and the
//! socket runtimes only open links for edges that exist.

use std::fmt;
use std::sync::Arc;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::engine::ConfigError;
use crate::ids::NodeId;
use crate::json::{Json, JsonError};
use crate::perm::stream_seed;
use crate::ports::Wiring;

/// Salt mixing the run's topology seed into the graph-generation stream
/// (only [`Topology::RandomRegular`] draws from it).
const SALT_GRAPH: u64 = 0x4752_4150; // "GRAP"

/// Per-node adjacency lists, shared across all port maps of a run.
pub(crate) type Adjacency = Arc<Vec<Arc<[u32]>>>;

/// The graph an execution runs on.
///
/// Part of [`crate::engine::SimConfig`]; validated by
/// [`Topology::validate`] before anything runs. The default is
/// [`Topology::Complete`], which serializes to the pre-topology JSON
/// schema unchanged (the field is omitted entirely), so every committed
/// Complete-graph record keeps its content-addressed id.
#[derive(Clone, Debug, PartialEq, Default)]
pub enum Topology {
    /// The complete graph `K_n` — the paper's model.
    #[default]
    Complete,
    /// The hub graph: nodes `0..clusters` are adjacent to every node,
    /// every other node is adjacent to exactly the hubs. Diameter ≤ 2.
    DiameterTwo {
        /// Number of hub nodes, in `1..=n`. `clusters = n` degenerates
        /// to the complete graph.
        clusters: u32,
    },
    /// A seeded random `d`-regular simple graph (configuration model
    /// with switch repair). Requires `1 ≤ d ≤ n-1` and `n·d` even.
    RandomRegular {
        /// Uniform node degree.
        d: u32,
    },
    /// An explicit adjacency: one sorted, self-free, symmetric,
    /// non-empty neighbour list per node.
    Explicit {
        /// `adjacency[u]` = sorted neighbour ids of node `u`.
        adjacency: Arc<Vec<Vec<u32>>>,
    },
}

impl fmt::Display for Topology {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Topology::Complete => write!(f, "complete"),
            Topology::DiameterTwo { clusters } => write!(f, "diam2x{clusters}"),
            Topology::RandomRegular { d } => write!(f, "rr{d}"),
            Topology::Explicit { adjacency } => write!(f, "explicit[{}]", adjacency.len()),
        }
    }
}

impl Topology {
    /// Whether this is the complete graph variant (the schema-invisible
    /// default).
    pub fn is_complete(&self) -> bool {
        matches!(self, Topology::Complete)
    }

    /// Validates the topology against network size `n`.
    pub fn validate(&self, n: u32) -> Result<(), ConfigError> {
        match self {
            Topology::Complete => Ok(()),
            Topology::DiameterTwo { clusters } => {
                if *clusters == 0 || *clusters > n {
                    return Err(ConfigError::ClustersOutOfRange {
                        clusters: *clusters,
                        n,
                    });
                }
                Ok(())
            }
            Topology::RandomRegular { d } => {
                if *d == 0 || *d > n - 1 || (u64::from(n) * u64::from(*d)) % 2 != 0 {
                    return Err(ConfigError::DegreeOutOfRange { d: *d, n });
                }
                Ok(())
            }
            Topology::Explicit { adjacency } => {
                if adjacency.len() != n as usize {
                    return Err(ConfigError::AdjacencyWrongLength {
                        lists: adjacency.len() as u32,
                        n,
                    });
                }
                for (u, list) in adjacency.iter().enumerate() {
                    let u32u = u as u32;
                    if list.is_empty() {
                        return Err(ConfigError::BadAdjacency { node: u32u });
                    }
                    let mut prev: Option<u32> = None;
                    for &v in list {
                        // Sorted strictly increasing, in range, self-free.
                        if v >= n || v == u32u || prev.is_some_and(|p| p >= v) {
                            return Err(ConfigError::BadAdjacency { node: u32u });
                        }
                        prev = Some(v);
                        // Symmetric: `u ∈ adjacency[v]`.
                        if adjacency[v as usize].binary_search(&u32u).is_err() {
                            return Err(ConfigError::BadAdjacency { node: u32u });
                        }
                    }
                }
                Ok(())
            }
        }
    }

    /// The degree of `node` in an `n`-node network. For
    /// [`Topology::RandomRegular`] this is `d` without generating the
    /// graph.
    pub fn degree(&self, n: u32, node: NodeId) -> u32 {
        match self {
            Topology::Complete => n - 1,
            Topology::DiameterTwo { clusters } => {
                if node.0 < *clusters {
                    n - 1
                } else {
                    *clusters
                }
            }
            Topology::RandomRegular { d } => *d,
            Topology::Explicit { adjacency } => adjacency[node.index()].len() as u32,
        }
    }

    /// Materialized per-node adjacency, for the variants that need one
    /// (`RandomRegular` generates it from `topology_seed`; `Explicit`
    /// converts its lists). Closed-form variants return `None`.
    ///
    /// # Panics
    ///
    /// Panics (deterministically, with the generation seed in the
    /// message) if random-regular switch repair fails to converge — which
    /// for valid parameters is astronomically unlikely; the panic message
    /// carries everything needed to replay it.
    pub(crate) fn adjacency(&self, n: u32, topology_seed: u64) -> Option<Adjacency> {
        match self {
            Topology::Complete | Topology::DiameterTwo { .. } => None,
            Topology::RandomRegular { d } => Some(random_regular_adjacency(n, *d, topology_seed)),
            Topology::Explicit { adjacency } => Some(Arc::new(
                adjacency.iter().map(|l| Arc::from(l.as_slice())).collect(),
            )),
        }
    }

    /// The wiring shape of one node; `adjacency` must be the result of
    /// [`Topology::adjacency`] for the same `(n, topology_seed)`.
    pub(crate) fn wiring_of(&self, node: NodeId, adjacency: Option<&Adjacency>) -> Wiring {
        match self {
            Topology::Complete => Wiring::Complete,
            Topology::DiameterTwo { clusters } => {
                if node.0 < *clusters {
                    // A hub is adjacent to everyone — wired exactly like
                    // a complete-graph node.
                    Wiring::Complete
                } else {
                    Wiring::Hub {
                        clusters: *clusters,
                    }
                }
            }
            Topology::RandomRegular { .. } | Topology::Explicit { .. } => Wiring::List(
                adjacency.expect("list topologies carry an adjacency")[node.index()].clone(),
            ),
        }
    }

    /// Tagged JSON encoding. [`Topology::Complete`] encodes too (for
    /// symmetry), but writers normally omit the field entirely for it —
    /// that is what keeps pre-topology records bit-identical.
    pub fn to_json(&self) -> Json {
        match self {
            Topology::Complete => Json::Obj(vec![("kind".into(), Json::Str("complete".into()))]),
            Topology::DiameterTwo { clusters } => Json::Obj(vec![
                ("kind".into(), Json::Str("diameter_two".into())),
                ("clusters".into(), Json::UInt(u64::from(*clusters))),
            ]),
            Topology::RandomRegular { d } => Json::Obj(vec![
                ("kind".into(), Json::Str("random_regular".into())),
                ("d".into(), Json::UInt(u64::from(*d))),
            ]),
            Topology::Explicit { adjacency } => Json::Obj(vec![
                ("kind".into(), Json::Str("explicit".into())),
                (
                    "adjacency".into(),
                    Json::Arr(
                        adjacency
                            .iter()
                            .map(|l| {
                                Json::Arr(l.iter().map(|&v| Json::UInt(u64::from(v))).collect())
                            })
                            .collect(),
                    ),
                ),
            ]),
        }
    }

    /// Materializes the edge oracle for one run: the `(n, topology_seed)`
    /// pair pins the exact graph (seeded generation included), and the
    /// returned [`EdgeSet`] answers membership queries without ever
    /// expanding the closed-form variants. This is the bridge the socket
    /// runtimes use to open links only for edges that exist.
    pub fn edge_set(&self, n: u32, topology_seed: u64) -> EdgeSet {
        let kind = match self {
            Topology::Complete => EdgeSetKind::Complete,
            Topology::DiameterTwo { clusters } => EdgeSetKind::Hub {
                clusters: *clusters,
            },
            Topology::RandomRegular { .. } | Topology::Explicit { .. } => EdgeSetKind::Lists(
                self.adjacency(n, topology_seed)
                    .expect("list topologies carry an adjacency"),
            ),
        };
        EdgeSet { n, kind }
    }

    /// Inverse of [`Topology::to_json`].
    pub fn from_json(v: &Json) -> Result<Self, JsonError> {
        let u32_of = |x: &Json| -> Result<u32, JsonError> {
            let u = x.as_u64()?;
            u32::try_from(u).map_err(|_| JsonError::new(format!("value {u} exceeds u32")))
        };
        let kind = v.field("kind")?.as_str()?;
        match kind {
            "complete" => Ok(Topology::Complete),
            "diameter_two" => Ok(Topology::DiameterTwo {
                clusters: u32_of(v.field("clusters")?)?,
            }),
            "random_regular" => Ok(Topology::RandomRegular {
                d: u32_of(v.field("d")?)?,
            }),
            "explicit" => {
                let lists = v.field("adjacency")?.as_arr()?;
                let mut adjacency = Vec::with_capacity(lists.len());
                for l in lists {
                    adjacency.push(
                        l.as_arr()?
                            .iter()
                            .map(u32_of)
                            .collect::<Result<Vec<u32>, JsonError>>()?,
                    );
                }
                Ok(Topology::Explicit {
                    adjacency: Arc::new(adjacency),
                })
            }
            other => Err(JsonError::new(format!("unknown topology kind `{other}`"))),
        }
    }
}

/// An edge oracle for one run's materialized graph, built by
/// [`Topology::edge_set`].
///
/// Closed-form variants (complete, hub) answer in O(1) without expanding
/// anything; list variants answer by binary search over the same
/// adjacency the engine wires, so the oracle and the port maps can never
/// disagree about which links exist. The socket runtimes
/// (`ftc-net`'s TCP mesh, `ftc-mesh`'s proc-pair fabric) consult it to
/// open exactly the links the topology has.
#[derive(Clone, Debug)]
pub struct EdgeSet {
    n: u32,
    kind: EdgeSetKind,
}

#[derive(Clone, Debug)]
enum EdgeSetKind {
    Complete,
    Hub { clusters: u32 },
    Lists(Adjacency),
}

impl EdgeSet {
    /// The network size the oracle was built for.
    pub fn n(&self) -> u32 {
        self.n
    }

    /// Whether the undirected edge `{u, v}` exists. Self-pairs and
    /// out-of-range ids are simply absent, not errors.
    pub fn has_edge(&self, u: u32, v: u32) -> bool {
        if u == v || u >= self.n || v >= self.n {
            return false;
        }
        match &self.kind {
            EdgeSetKind::Complete => true,
            EdgeSetKind::Hub { clusters } => u < *clusters || v < *clusters,
            EdgeSetKind::Lists(adj) => adj[u as usize].binary_search(&v).is_ok(),
        }
    }

    /// Total number of undirected edges.
    pub fn edge_count(&self) -> u64 {
        let n = u64::from(self.n);
        match &self.kind {
            EdgeSetKind::Complete => n * (n - 1) / 2,
            EdgeSetKind::Hub { clusters } => {
                // Sum of degrees halved: hubs see n-1, spokes see the hubs.
                let h = u64::from(*clusters);
                (h * (n - 1) + (n - h) * h) / 2
            }
            EdgeSetKind::Lists(adj) => adj.iter().map(|l| l.len() as u64).sum::<u64>() / 2,
        }
    }

    /// Visits every undirected edge exactly once as `(u, v)` with
    /// `u < v`. Cost is O(edges), never O(n²) for sparse variants — the
    /// shape the fabric's crossing computation needs.
    pub fn for_each_edge(&self, mut f: impl FnMut(u32, u32)) {
        match &self.kind {
            EdgeSetKind::Complete => {
                for u in 0..self.n {
                    for v in (u + 1)..self.n {
                        f(u, v);
                    }
                }
            }
            EdgeSetKind::Hub { clusters } => {
                // Every edge has a hub as its lower-or-only hub endpoint:
                // hub–hub pairs (both below `clusters`) and hub–spoke pairs.
                for u in 0..*clusters {
                    for v in (u + 1)..self.n {
                        f(u, v);
                    }
                }
            }
            EdgeSetKind::Lists(adj) => {
                for (u, list) in adj.iter().enumerate() {
                    let u = u as u32;
                    for &v in list.iter().filter(|&&v| v > u) {
                        f(u, v);
                    }
                }
            }
        }
    }
}

/// Generates a random `d`-regular simple graph on `n` nodes via the
/// configuration model: `n·d` stubs shuffled and paired, then repaired by
/// degree-preserving 2-switches until no self-loops or duplicate edges
/// remain. Deterministic in `(n, d, topology_seed)`.
///
/// # Panics
///
/// Panics with full `(n, d, seed)` context if repair exceeds its attempt
/// budget — deterministic and replayable, never reachable in practice for
/// parameters accepted by [`Topology::validate`].
fn random_regular_adjacency(n: u32, d: u32, topology_seed: u64) -> Adjacency {
    use std::collections::HashSet;
    let nn = n as usize;
    let dd = d as usize;
    if d == n - 1 {
        // The unique (n-1)-regular simple graph is K_n; the pairing model
        // cannot converge to it by local switches, so build it directly.
        return Arc::new(
            (0..n)
                .map(|u| (0..n).filter(|&v| v != u).collect::<Vec<u32>>())
                .map(Arc::from)
                .collect(),
        );
    }
    let m = nn * dd / 2;
    let seed = stream_seed(topology_seed, SALT_GRAPH);
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut stubs: Vec<u32> = (0..n).flat_map(|v| std::iter::repeat_n(v, dd)).collect();
    // Fisher–Yates (the vendored `rand` subset has no `shuffle`).
    for i in (1..stubs.len()).rev() {
        let j = rng.random_range(0..=i);
        stubs.swap(i, j);
    }

    let canon = |a: u32, b: u32| (a.min(b), a.max(b));
    let mut edges: Vec<(u32, u32)> = (0..m)
        .map(|i| canon(stubs[2 * i], stubs[2 * i + 1]))
        .collect();
    let mut present: HashSet<(u32, u32)> = HashSet::with_capacity(m);
    let mut bad: Vec<usize> = Vec::new();
    for (i, &e) in edges.iter().enumerate() {
        if e.0 == e.1 || !present.insert(e) {
            bad.push(i);
        }
    }

    // Switch repair: replace a bad pairing and a random good edge with a
    // crosswise re-pairing when that removes the defect. Each accepted
    // switch preserves all degrees; expected work is O(bad · n/(n-d)).
    let mut attempts: u64 = 0;
    let cap = 500 * (m as u64) + 100_000;
    while let Some(&i) = bad.last() {
        attempts += 1;
        assert!(
            attempts <= cap,
            "random-regular repair did not converge for n={n} d={d} \
             (topology seed {topology_seed:#x}, graph seed {seed:#x})"
        );
        let j = rng.random_range(0..m);
        if i == j || bad.contains(&j) {
            continue;
        }
        let (u, v) = edges[i];
        let (x, y) = edges[j];
        // Two crosswise re-pairings; a fair coin keeps the model honest.
        let (a, b) = if rng.random::<bool>() {
            (canon(u, x), canon(v, y))
        } else {
            (canon(u, y), canon(v, x))
        };
        if a.0 == a.1 || b.0 == b.1 || a == b || present.contains(&a) || present.contains(&b) {
            continue;
        }
        present.remove(&(x, y));
        present.insert(a);
        present.insert(b);
        edges[i] = a;
        edges[j] = b;
        bad.pop();
    }

    let mut lists: Vec<Vec<u32>> = vec![Vec::with_capacity(dd); nn];
    for &(a, b) in &edges {
        lists[a as usize].push(b);
        lists[b as usize].push(a);
    }
    Arc::new(
        lists
            .into_iter()
            .map(|mut l| {
                l.sort_unstable();
                Arc::from(l)
            })
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn explicit(lists: &[&[u32]]) -> Topology {
        Topology::Explicit {
            adjacency: Arc::new(lists.iter().map(|l| l.to_vec()).collect()),
        }
    }

    #[test]
    fn default_is_complete_and_validates_everywhere() {
        assert!(Topology::default().is_complete());
        for n in [2, 97, 1 << 20] {
            assert!(Topology::Complete.validate(n).is_ok());
        }
    }

    #[test]
    fn parameter_validation_catches_bad_shapes() {
        let n = 16;
        assert_eq!(
            Topology::DiameterTwo { clusters: 0 }.validate(n),
            Err(ConfigError::ClustersOutOfRange { clusters: 0, n })
        );
        assert_eq!(
            Topology::DiameterTwo { clusters: 17 }.validate(n),
            Err(ConfigError::ClustersOutOfRange { clusters: 17, n })
        );
        assert!(Topology::DiameterTwo { clusters: 16 }.validate(n).is_ok());
        assert_eq!(
            Topology::RandomRegular { d: 0 }.validate(n),
            Err(ConfigError::DegreeOutOfRange { d: 0, n })
        );
        assert_eq!(
            Topology::RandomRegular { d: 16 }.validate(n),
            Err(ConfigError::DegreeOutOfRange { d: 16, n })
        );
        // n·d odd: 15 nodes of degree 3 cannot exist.
        assert_eq!(
            Topology::RandomRegular { d: 3 }.validate(15),
            Err(ConfigError::DegreeOutOfRange { d: 3, n: 15 })
        );
        assert!(Topology::RandomRegular { d: 3 }.validate(16).is_ok());
    }

    #[test]
    fn explicit_validation_requires_canonical_symmetric_lists() {
        let path = explicit(&[&[1], &[0, 2], &[1]]);
        assert!(path.validate(3).is_ok());
        // Wrong length.
        assert_eq!(
            path.validate(4),
            Err(ConfigError::AdjacencyWrongLength { lists: 3, n: 4 })
        );
        // Empty list.
        assert_eq!(
            explicit(&[&[], &[0]]).validate(2),
            Err(ConfigError::BadAdjacency { node: 0 })
        );
        // Self loop.
        assert_eq!(
            explicit(&[&[0, 1], &[0]]).validate(2),
            Err(ConfigError::BadAdjacency { node: 0 })
        );
        // Unsorted.
        assert_eq!(
            explicit(&[&[2, 1], &[0, 2], &[0, 1]]).validate(3),
            Err(ConfigError::BadAdjacency { node: 0 })
        );
        // Asymmetric: 0 lists 1, 1 does not list 0.
        assert_eq!(
            explicit(&[&[1], &[2], &[1]]).validate(3),
            Err(ConfigError::BadAdjacency { node: 0 })
        );
        // Out of range.
        assert_eq!(
            explicit(&[&[1], &[0, 5], &[1]]).validate(3),
            Err(ConfigError::BadAdjacency { node: 1 })
        );
    }

    #[test]
    fn random_regular_generation_is_simple_regular_and_deterministic() {
        for (n, d, seed) in [(16u32, 3u32, 1u64), (64, 8, 7), (101, 4, 42), (10, 9, 3)] {
            let adj = random_regular_adjacency(n, d, seed);
            assert_eq!(adj.len(), n as usize);
            for (u, list) in adj.iter().enumerate() {
                assert_eq!(list.len(), d as usize, "degree of node {u}");
                let mut prev = None;
                for &v in list.iter() {
                    assert!(v < n && v != u as u32, "edge ({u},{v}) invalid");
                    assert!(prev.is_none_or(|p| p < v), "list of {u} not strict-sorted");
                    prev = Some(v);
                    assert!(
                        adj[v as usize].binary_search(&(u as u32)).is_ok(),
                        "edge ({u},{v}) not symmetric"
                    );
                }
            }
            // Same seed, same graph; different seed, different graph.
            assert_eq!(adj, random_regular_adjacency(n, d, seed));
        }
        assert_ne!(
            random_regular_adjacency(64, 8, 7),
            random_regular_adjacency(64, 8, 8)
        );
    }

    #[test]
    fn degree_matches_materialized_adjacency() {
        let topos = [
            Topology::Complete,
            Topology::DiameterTwo { clusters: 3 },
            Topology::RandomRegular { d: 4 },
        ];
        let n = 12;
        for topo in topos {
            let adj = topo.adjacency(n, 9);
            for u in 0..n {
                let node = NodeId(u);
                let expect = match &adj {
                    Some(a) => a[node.index()].len() as u32,
                    None => match &topo {
                        Topology::Complete => n - 1,
                        Topology::DiameterTwo { clusters } => {
                            if u < *clusters {
                                n - 1
                            } else {
                                *clusters
                            }
                        }
                        _ => unreachable!(),
                    },
                };
                assert_eq!(topo.degree(n, node), expect, "{topo} node {u}");
            }
        }
    }

    #[test]
    fn json_round_trips_every_variant() {
        let topos = [
            Topology::Complete,
            Topology::DiameterTwo { clusters: 8 },
            Topology::RandomRegular { d: 6 },
            explicit(&[&[1], &[0, 2], &[1]]),
        ];
        for topo in topos {
            let text = topo.to_json().render();
            let back = Topology::from_json(&Json::parse(&text).unwrap()).unwrap();
            assert_eq!(back, topo, "{text}");
        }
        assert!(Topology::from_json(&Json::parse(r#"{"kind":"torus"}"#).unwrap()).is_err());
    }

    #[test]
    fn edge_set_agrees_with_degrees_and_adjacency() {
        let n = 24;
        let seed = 11;
        let topos = [
            Topology::Complete,
            Topology::DiameterTwo { clusters: 5 },
            Topology::RandomRegular { d: 4 },
            explicit(&[&[1], &[0, 2], &[1]]),
        ];
        for topo in topos {
            let n = if matches!(topo, Topology::Explicit { .. }) {
                3
            } else {
                n
            };
            let edges = topo.edge_set(n, seed);
            assert_eq!(edges.n(), n);
            // Membership is symmetric, self-free, and per-node counts
            // reproduce the closed-form degrees.
            let mut total = 0u64;
            for u in 0..n {
                let degree = (0..n).filter(|&v| edges.has_edge(u, v)).count() as u32;
                assert_eq!(degree, topo.degree(n, NodeId(u)), "{topo} node {u}");
                for v in 0..n {
                    assert_eq!(edges.has_edge(u, v), edges.has_edge(v, u));
                }
                assert!(!edges.has_edge(u, u));
                total += u64::from(degree);
            }
            assert_eq!(edges.edge_count(), total / 2, "{topo}");
            // Enumeration visits exactly the member edges, each once.
            let mut seen = std::collections::HashSet::new();
            edges.for_each_edge(|u, v| {
                assert!(u < v, "{topo}: ({u},{v}) not canonical");
                assert!(
                    edges.has_edge(u, v),
                    "{topo}: ({u},{v}) enumerated but absent"
                );
                assert!(seen.insert((u, v)), "{topo}: ({u},{v}) visited twice");
            });
            assert_eq!(seen.len() as u64, edges.edge_count(), "{topo}");
        }
        // Out-of-range queries are absent, not panics.
        assert!(!Topology::Complete.edge_set(4, 0).has_edge(0, 9));
    }

    #[test]
    fn display_labels_are_compact() {
        assert_eq!(Topology::Complete.to_string(), "complete");
        assert_eq!(Topology::DiameterTwo { clusters: 8 }.to_string(), "diam2x8");
        assert_eq!(Topology::RandomRegular { d: 6 }.to_string(), "rr6");
    }
}
