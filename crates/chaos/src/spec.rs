//! Declarative hunt-portfolio specs.
//!
//! A [`HuntCellSpec`] is one adversary search — the exact arguments a
//! single `ftc hunt` invocation would take — and a [`HuntCampaignSpec`]
//! is the grid of them. Specs are data: JSON round-trippable, hashed with
//! the same FNV the lab store uses, so a named campaign's hash is stable
//! across machines and a committed record can be gated byte-for-byte.

use ftc_hunt::prelude::{Objective, ProtoKind, Strategy};
use ftc_lab::spec::fnv1a64;
use ftc_sim::json::{Json, JsonError};

/// One adversary search in a portfolio.
#[derive(Clone, Debug, PartialEq)]
pub struct HuntCellSpec {
    /// Row label (also the default series name in reports).
    pub label: String,
    /// Protocol under attack.
    pub proto: ProtoKind,
    /// What counts as a find.
    pub objective: Objective,
    /// Search strategy.
    pub strategy: Strategy,
    /// Network size.
    pub n: u32,
    /// Resilience parameter.
    pub alpha: f64,
    /// Agreement zero-input density (ignored for LE, recorded anyway).
    pub zeros: f64,
    /// Candidate schedules to evaluate.
    pub budget: u64,
    /// Probe seeds per candidate.
    pub probes: u64,
    /// Hunt seed (drives proposals and the probe panel).
    pub seed: u64,
    /// Also search socket-level wire faults; the cell then runs on the
    /// channel substrate, where the faults are actually injected.
    pub wire: bool,
}

impl HuntCellSpec {
    /// JSON encoding (deterministic key order).
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("label".into(), Json::Str(self.label.clone())),
            ("proto".into(), Json::Str(self.proto.name().into())),
            ("objective".into(), Json::Str(self.objective.name().into())),
            ("strategy".into(), Json::Str(self.strategy.name().into())),
            ("n".into(), Json::UInt(u64::from(self.n))),
            ("alpha".into(), Json::Num(self.alpha)),
            ("zeros".into(), Json::Num(self.zeros)),
            ("budget".into(), Json::UInt(self.budget)),
            ("probes".into(), Json::UInt(self.probes)),
            ("seed".into(), Json::UInt(self.seed)),
            ("wire".into(), Json::Bool(self.wire)),
        ])
    }

    /// Decodes from the [`HuntCellSpec::to_json`] form.
    pub fn from_json(v: &Json) -> Result<Self, JsonError> {
        let err = |message: String| JsonError { message };
        Ok(HuntCellSpec {
            label: v.field("label")?.as_str()?.to_string(),
            proto: ProtoKind::parse(v.field("proto")?.as_str()?).map_err(err)?,
            objective: Objective::parse(v.field("objective")?.as_str()?).map_err(err)?,
            strategy: Strategy::parse(v.field("strategy")?.as_str()?).map_err(err)?,
            n: v.field("n")?.as_u64()? as u32,
            alpha: v.field("alpha")?.as_f64()?,
            zeros: v.field("zeros")?.as_f64()?,
            budget: v.field("budget")?.as_u64()?,
            probes: v.field("probes")?.as_u64()?,
            seed: v.field("seed")?.as_u64()?,
            wire: v.field("wire")?.as_bool()?,
        })
    }
}

/// A named portfolio of adversary searches.
#[derive(Clone, Debug, PartialEq)]
pub struct HuntCampaignSpec {
    /// Campaign name (prefix of the stored record id).
    pub name: String,
    /// The searches, run in order.
    pub cells: Vec<HuntCellSpec>,
}

impl HuntCampaignSpec {
    /// A new empty campaign.
    pub fn new(name: impl Into<String>) -> Self {
        HuntCampaignSpec {
            name: name.into(),
            cells: Vec::new(),
        }
    }

    /// Adds a cell (builder style).
    #[must_use]
    pub fn cell(mut self, cell: HuntCellSpec) -> Self {
        self.cells.push(cell);
        self
    }

    /// JSON encoding.
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("name".into(), Json::Str(self.name.clone())),
            (
                "cells".into(),
                Json::Arr(self.cells.iter().map(HuntCellSpec::to_json).collect()),
            ),
        ])
    }

    /// Decodes from the [`HuntCampaignSpec::to_json`] form.
    pub fn from_json(v: &Json) -> Result<Self, JsonError> {
        Ok(HuntCampaignSpec {
            name: v.field("name")?.as_str()?.to_string(),
            cells: v
                .field("cells")?
                .as_arr()?
                .iter()
                .map(HuntCellSpec::from_json)
                .collect::<Result<_, _>>()?,
        })
    }

    /// Content hash of the spec (same FNV-1a the lab store uses).
    pub fn hash(&self) -> String {
        format!("{:016x}", fnv1a64(self.to_json().render().as_bytes()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> HuntCampaignSpec {
        HuntCampaignSpec::new("unit").cell(HuntCellSpec {
            label: "le-failure-random".into(),
            proto: ProtoKind::Le,
            objective: Objective::Failure,
            strategy: Strategy::Random,
            n: 16,
            alpha: 0.5,
            zeros: 0.05,
            budget: 8,
            probes: 2,
            seed: 11,
            wire: false,
        })
    }

    #[test]
    fn specs_round_trip_and_hash_stably() {
        let spec = sample();
        let back =
            HuntCampaignSpec::from_json(&Json::parse(&spec.to_json().render()).unwrap()).unwrap();
        assert_eq!(back, spec);
        assert_eq!(back.hash(), spec.hash());
        // Any content change moves the hash.
        let mut other = spec.clone();
        other.cells[0].budget = 9;
        assert_ne!(other.hash(), spec.hash());
        let mut wired = spec.clone();
        wired.cells[0].wire = true;
        assert_ne!(wired.hash(), spec.hash());
    }

    #[test]
    fn malformed_cells_are_rejected() {
        let bad = r#"{"name":"x","cells":[{"label":"a","proto":"nope","objective":"failure","strategy":"random","n":16,"alpha":0.5,"zeros":0.0,"budget":1,"probes":1,"seed":1,"wire":false}]}"#;
        assert!(HuntCampaignSpec::from_json(&Json::parse(bad).unwrap()).is_err());
    }
}
