//! Persisted portfolio-hunt records.
//!
//! A [`HuntCampaignRecord`] mirrors the lab's `CampaignRecord` contract:
//! a self-describing JSON document (schema [`CHAOS_SCHEMA`]) whose
//! deterministic payload — everything except the `diag` block — is
//! byte-identical across reruns of the same spec at any `--jobs`, and
//! whose store id content-addresses that payload. It lives in the same
//! content-addressed store as lab records; the store's listing
//! distinguishes the two by schema tag.

use ftc_hunt::prelude::Artifact;
use ftc_lab::run::git_rev;
use ftc_lab::spec::fnv1a64;
use ftc_sim::json::{Json, JsonError};

use crate::coverage::Coverage;
use crate::spec::{HuntCampaignSpec, HuntCellSpec};

/// Schema tag of persisted portfolio-hunt records.
pub const CHAOS_SCHEMA: &str = "ftc-chaos-record/v1";

/// What one portfolio cell's search produced.
#[derive(Clone, Debug)]
pub struct HuntCellResult {
    /// The cell this search executed (copied for self-description).
    pub cell: HuntCellSpec,
    /// Candidate schedules evaluated.
    pub evaluated: u64,
    /// Candidates whose argmax probe hit the objective.
    pub hits: u64,
    /// Crash entries in the champion before shrinking.
    pub entries_before: u64,
    /// Crash entries after shrinking.
    pub entries_after: u64,
    /// Engine probes the shrink spent.
    pub shrink_probes: u64,
    /// Schedule-space coverage of everything this cell explored.
    pub coverage: Coverage,
    /// The shrunk champion as a replayable artifact (`hit` records
    /// whether it is a counterexample or merely the budget's worst).
    pub artifact: Artifact,
    /// Wall-clock seconds (diagnostic; outside the deterministic payload).
    pub wall_s: f64,
}

impl HuntCellResult {
    /// JSON encoding; `diag` controls whether wall-clock rides along.
    pub fn to_json(&self, diag: bool) -> Json {
        let mut fields = vec![
            ("cell".into(), self.cell.to_json()),
            ("evaluated".into(), Json::UInt(self.evaluated)),
            ("hits".into(), Json::UInt(self.hits)),
            (
                "shrunk".into(),
                Json::Obj(vec![
                    ("before".into(), Json::UInt(self.entries_before)),
                    ("after".into(), Json::UInt(self.entries_after)),
                    ("probes".into(), Json::UInt(self.shrink_probes)),
                ]),
            ),
            ("coverage".into(), self.coverage.to_json()),
            ("artifact".into(), self.artifact.to_json()),
        ];
        if diag {
            fields.push(("wall_s".into(), Json::Num(self.wall_s)));
        }
        Json::Obj(fields)
    }

    /// Decodes from the [`HuntCellResult::to_json`] form.
    pub fn from_json(v: &Json) -> Result<Self, JsonError> {
        let shrunk = v.field("shrunk")?;
        Ok(HuntCellResult {
            cell: HuntCellSpec::from_json(v.field("cell")?)?,
            evaluated: v.field("evaluated")?.as_u64()?,
            hits: v.field("hits")?.as_u64()?,
            entries_before: shrunk.field("before")?.as_u64()?,
            entries_after: shrunk.field("after")?.as_u64()?,
            shrink_probes: shrunk.field("probes")?.as_u64()?,
            coverage: Coverage::from_json(v.field("coverage")?)?,
            artifact: Artifact::from_json(v.field("artifact")?).map_err(|e| JsonError {
                message: format!("cell artifact: {}", e.message),
            })?,
            wall_s: v.get("wall_s").map_or(Ok(0.0), Json::as_f64)?,
        })
    }
}

/// One persisted portfolio run: the spec, per-cell results, the merged
/// coverage figure, and run provenance.
#[derive(Clone, Debug)]
pub struct HuntCampaignRecord {
    /// The portfolio this run executed.
    pub spec: HuntCampaignSpec,
    /// [`HuntCampaignSpec::hash`] of `spec`.
    pub spec_hash: String,
    /// Per-cell results, aligned with `spec.cells`.
    pub cells: Vec<HuntCellResult>,
    /// Campaign-level coverage (bucket-wise sum over cells).
    pub coverage: Coverage,
    /// Git revision of the producing tree (diagnostic).
    pub git_rev: String,
    /// Total wall-clock seconds (diagnostic).
    pub wall_s: f64,
}

impl HuntCampaignRecord {
    /// JSON encoding. Without `diag`, the render is the deterministic
    /// payload that the store content-addresses and `gate` compares.
    pub fn to_json(&self, diag: bool) -> Json {
        let mut fields = vec![
            ("schema".into(), Json::Str(CHAOS_SCHEMA.into())),
            ("name".into(), Json::Str(self.spec.name.clone())),
            ("spec_hash".into(), Json::Str(self.spec_hash.clone())),
            ("spec".into(), self.spec.to_json()),
            (
                "cells".into(),
                Json::Arr(self.cells.iter().map(|c| c.to_json(diag)).collect()),
            ),
            ("coverage".into(), self.coverage.to_json()),
        ];
        if diag {
            fields.push((
                "diag".into(),
                Json::Obj(vec![
                    ("git_rev".into(), Json::Str(self.git_rev.clone())),
                    ("wall_s".into(), Json::Num(self.wall_s)),
                ]),
            ));
        }
        Json::Obj(fields)
    }

    /// The deterministic payload (diag stripped), rendered.
    pub fn deterministic_render(&self) -> String {
        self.to_json(false).render()
    }

    /// Content address: `<name>-<fnv64 of the deterministic payload>`.
    pub fn id(&self) -> String {
        format!(
            "{}-{:016x}",
            self.spec.name,
            fnv1a64(self.deterministic_render().as_bytes())
        )
    }

    /// Total hits across the portfolio.
    pub fn hits(&self) -> u64 {
        self.cells.iter().map(|c| c.hits).sum()
    }

    /// Decodes from the [`HuntCampaignRecord::to_json`] form.
    pub fn from_json(v: &Json) -> Result<Self, JsonError> {
        match v.field("schema")?.as_str()? {
            CHAOS_SCHEMA => {}
            other => {
                return Err(JsonError {
                    message: format!("unknown record schema `{other}`"),
                })
            }
        }
        let (git_rev, wall_s) = match v.get("diag") {
            Some(d) => (
                d.field("git_rev")?.as_str()?.to_string(),
                d.field("wall_s")?.as_f64()?,
            ),
            None => ("unknown".to_string(), 0.0),
        };
        Ok(HuntCampaignRecord {
            spec: HuntCampaignSpec::from_json(v.field("spec")?)?,
            spec_hash: v.field("spec_hash")?.as_str()?.to_string(),
            cells: v
                .field("cells")?
                .as_arr()?
                .iter()
                .map(HuntCellResult::from_json)
                .collect::<Result<_, _>>()?,
            coverage: Coverage::from_json(v.field("coverage")?)?,
            git_rev,
            wall_s,
        })
    }

    /// Parses a record from a JSON string.
    pub fn parse(s: &str) -> Result<Self, String> {
        let v = Json::parse(s).map_err(|e| format!("record JSON: {}", e.message))?;
        HuntCampaignRecord::from_json(&v).map_err(|e| format!("record: {}", e.message))
    }
}

/// Best-effort provenance for fresh records (re-exported convenience).
pub fn provenance() -> String {
    git_rev()
}
