//! Portfolio execution: fan each cell onto the hunt pipeline and
//! condense the portfolio into a stored record.
//!
//! Each cell is exactly one `run_hunt` + `shrink` + artifact mint — the
//! same pipeline a single `ftc hunt` runs — with a coverage observer
//! riding on [`run_hunt_observed`] so every explored schedule is
//! projected onto the bucket grid whether or not it hit anything. The
//! hunt is deterministic in `(spec, seed, budget)` and invariant under
//! `jobs`, coverage counts are additive, and wall clocks live outside
//! the deterministic payload — so two runs of the same spec produce
//! byte-identical deterministic renders, which is what `gate` compares.

use std::time::Instant;

use ftc_core::prelude::Params;
use ftc_hunt::prelude::{
    run_hunt_observed, shrink, Artifact, HuntSpec, Substrate, ARTIFACT_VERSION,
};
use ftc_sim::engine::SimConfig;

use crate::coverage::Coverage;
use crate::record::{provenance, HuntCampaignRecord, HuntCellResult};
use crate::spec::{HuntCampaignSpec, HuntCellSpec};

/// Worker threads for wire-fault cells (the channel substrate is where
/// the injector lives; two workers keep CI cheap while still exercising
/// real cross-worker framing).
const WIRE_WORKERS: usize = 2;

/// Runs one portfolio cell: hunt, shrink, mint the artifact, and account
/// coverage over everything the search explored.
pub fn run_hunt_cell(cell: &HuntCellSpec, jobs: usize) -> Result<HuntCellResult, String> {
    let start = Instant::now();
    let params = Params::new(cell.n, cell.alpha).map_err(|e| e.to_string())?;
    let round_budget = cell.proto.round_budget(&params);
    let cfg = SimConfig::try_new(cell.n)
        .map_err(|e| e.to_string())?
        .max_rounds(round_budget);
    let substrate = if cell.wire {
        Substrate::Channel(WIRE_WORKERS)
    } else {
        Substrate::Engine
    };
    let spec = HuntSpec {
        proto: cell.proto,
        objective: cell.objective,
        params,
        cfg,
        zeros: cell.zeros,
        budget: cell.budget,
        probes: cell.probes,
        seed: cell.seed,
        jobs,
        strategy: cell.strategy,
        substrate,
        wire: cell.wire,
    };
    let mut coverage = Coverage::new();
    let report = run_hunt_observed(&spec, |c| {
        coverage.record_plan(&c.plan, cell.n, round_budget);
    })?;
    let champ = &report.champion;
    let reduced = shrink(
        &spec,
        &report.bounds,
        champ.probe_seed,
        champ.score,
        &champ.plan,
    );
    let mut art_cfg = spec.cfg.clone();
    art_cfg.seed = champ.probe_seed;
    let artifact = Artifact {
        version: ARTIFACT_VERSION,
        proto: cell.proto,
        objective: cell.objective,
        alpha: cell.alpha,
        zeros: cell.zeros,
        height: None,
        config: art_cfg,
        schedule: reduced.plan.clone(),
        wire: champ.wire.clone(),
        score: cell.objective.score(&reduced.observation),
        hit: cell.objective.hit(&reduced.observation, &report.bounds),
        fingerprint: reduced.observation.fingerprint.clone(),
    };
    Ok(HuntCellResult {
        cell: cell.clone(),
        evaluated: report.evaluated,
        hits: report.hits,
        entries_before: reduced.entries_before as u64,
        entries_after: reduced.entries_after as u64,
        shrink_probes: reduced.probes,
        coverage,
        artifact,
        wall_s: start.elapsed().as_secs_f64(),
    })
}

/// Executes a portfolio: every cell in order, coverage merged across the
/// campaign. Deterministic in `spec`; `jobs` only changes wall-clock.
pub fn run_hunt_campaign(
    spec: &HuntCampaignSpec,
    jobs: usize,
) -> Result<HuntCampaignRecord, String> {
    if spec.cells.is_empty() {
        return Err(format!("portfolio `{}` has no cells", spec.name));
    }
    for cell in &spec.cells {
        if cell.budget == 0 || cell.probes == 0 {
            return Err(format!("cell `{}` has a zero budget", cell.label));
        }
        if !cell.objective.supports(cell.proto) {
            return Err(format!(
                "cell `{}`: objective {} does not apply to {}",
                cell.label,
                cell.objective.name(),
                cell.proto.name()
            ));
        }
    }
    let start = Instant::now();
    let mut cells = Vec::with_capacity(spec.cells.len());
    let mut coverage = Coverage::new();
    for cell in &spec.cells {
        let result = run_hunt_cell(cell, jobs)?;
        coverage.merge(&result.coverage);
        cells.push(result);
    }
    Ok(HuntCampaignRecord {
        spec: spec.clone(),
        spec_hash: spec.hash(),
        cells,
        coverage,
        git_rev: provenance(),
        wall_s: start.elapsed().as_secs_f64(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftc_hunt::prelude::{Objective, ProtoKind, Strategy};
    use ftc_sim::json::Json;

    fn cell(label: &str, proto: ProtoKind, objective: Objective, wire: bool) -> HuntCellSpec {
        HuntCellSpec {
            label: label.into(),
            proto,
            objective,
            strategy: Strategy::Random,
            n: 16,
            alpha: 0.5,
            zeros: 0.05,
            budget: 4,
            probes: 1,
            seed: 23,
            wire,
        }
    }

    #[test]
    fn campaigns_are_jobs_invariant_and_round_trip() {
        let spec = HuntCampaignSpec::new("run-unit")
            .cell(cell(
                "le-msgs",
                ProtoKind::Le,
                Objective::MaxMessages,
                false,
            ))
            .cell(cell(
                "agree-fail",
                ProtoKind::Agree,
                Objective::Failure,
                false,
            ));
        let a = run_hunt_campaign(&spec, 1).unwrap();
        let b = run_hunt_campaign(&spec, 2).unwrap();
        assert_eq!(a.deterministic_render(), b.deterministic_render());
        assert_eq!(a.id(), b.id());
        assert_eq!(a.cells.len(), 2);
        assert_eq!(a.cells[0].evaluated, 4);
        // The searches explored something, and the campaign grid saw it.
        assert!(a.coverage.entries() > 0);
        assert!(a.coverage.fraction() > 0.0);
        // The record survives its own JSON, diag and deterministic alike.
        let with = HuntCampaignRecord::parse(&a.to_json(true).render()).unwrap();
        assert_eq!(with.deterministic_render(), a.deterministic_render());
        assert_eq!(with.git_rev, a.git_rev);
        let without = HuntCampaignRecord::parse(&a.deterministic_render()).unwrap();
        assert_eq!(without.git_rev, "unknown");
        assert_eq!(without.id(), a.id());
        // Cost objectives always crown a champion; its artifact replays.
        let replay = a.cells[0].artifact.replay(Substrate::Engine).unwrap();
        assert!(replay.ok(), "portfolio artifact diverged: {replay:?}");
    }

    #[test]
    fn wire_cells_search_and_record_wire_plans() {
        let spec = HuntCampaignSpec::new("wire-unit").cell(cell(
            "le-wire",
            ProtoKind::Le,
            Objective::MaxMessages,
            true,
        ));
        let record = run_hunt_campaign(&spec, 1).unwrap();
        let art = &record.cells[0].artifact;
        assert!(art.wire.is_some(), "wire hunts must record a wire plan");
        // The artifact's rendered form keeps the wire section.
        assert!(record.deterministic_render().contains("\"wire\""));
        // And it replays with the faults re-applied on the channel
        // substrate as well as ignored on the engine.
        assert!(art.replay(Substrate::Engine).unwrap().ok());
        assert!(art.replay(Substrate::Channel(2)).unwrap().ok());
    }

    #[test]
    fn invalid_portfolios_are_rejected_up_front() {
        let empty = HuntCampaignSpec::new("empty");
        assert!(run_hunt_campaign(&empty, 1).is_err());
        let unsupported = HuntCampaignSpec::new("bad").cell(cell(
            "agree-two-leaders",
            ProtoKind::Agree,
            Objective::TwoLeaders,
            false,
        ));
        assert!(run_hunt_campaign(&unsupported, 1).is_err());
        let mut zero = cell("z", ProtoKind::Le, Objective::Failure, false);
        zero.budget = 0;
        assert!(run_hunt_campaign(&HuntCampaignSpec::new("zero").cell(zero), 1).is_err());
    }

    #[test]
    fn coverage_json_lands_in_the_record_shape() {
        let spec = HuntCampaignSpec::new("shape-unit").cell(cell(
            "le-msgs",
            ProtoKind::Le,
            Objective::MaxMessages,
            false,
        ));
        let record = run_hunt_campaign(&spec, 1).unwrap();
        let v = Json::parse(&record.deterministic_render()).unwrap();
        assert_eq!(
            v.field("schema").unwrap().as_str().unwrap(),
            "ftc-chaos-record/v1"
        );
        let cov = v.field("coverage").unwrap();
        assert_eq!(cov.field("buckets").unwrap().as_u64().unwrap(), 80);
        assert!(cov.field("covered").unwrap().as_u64().unwrap() > 0);
    }
}
