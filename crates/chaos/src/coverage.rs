//! Schedule-space coverage accounting.
//!
//! A hunt that finds nothing proves nothing by itself — the interesting
//! question is *where it looked*. Coverage projects every explored
//! [`FaultPlan`] onto a fixed, normalized bucket grid:
//!
//! * **crash round**, as a quartile of the cell's round budget (early /
//!   mid-early / mid-late / late crashes stress different phases);
//! * **victim rank**, as a quartile of `n` (the protocols are
//!   rank-driven, so *who* crashes matters as much as when);
//! * **delivery-filter shape**, one bucket per [`DeliveryFilter`]
//!   variant (clean stop vs. partial-send vs. targeted-send are
//!   different failure semantics).
//!
//! That is 4 × 4 × 5 = 80 buckets. The projection is normalized — bucket
//! indices depend only on *fractions* of the cell's `n` and round budget
//! — so coverage figures are comparable across cells and merge into one
//! campaign-level figure. Counts are additive and the hunt's evaluation
//! order is deterministic, so coverage is `--jobs`-invariant like
//! everything else in the record.

use ftc_sim::adversary::DeliveryFilter;
use ftc_sim::json::{Json, JsonError};
use ftc_sim::prelude::FaultPlan;

/// Crash-round quartiles.
pub const ROUND_BINS: usize = 4;
/// Victim-rank quartiles.
pub const RANK_BINS: usize = 4;
/// Delivery-filter shapes (one per [`DeliveryFilter`] variant).
pub const FILTER_SHAPES: usize = 5;
/// Total buckets in the grid.
pub const BUCKETS: usize = ROUND_BINS * RANK_BINS * FILTER_SHAPES;

/// How many explored crash entries landed in each bucket.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Coverage {
    counts: Vec<u64>,
}

impl Default for Coverage {
    fn default() -> Self {
        Coverage::new()
    }
}

/// The filter-shape axis index of one delivery filter.
fn shape_index(filter: &DeliveryFilter) -> usize {
    match filter {
        DeliveryFilter::DeliverAll => 0,
        DeliveryFilter::DropAll => 1,
        DeliveryFilter::KeepFirst(_) => 2,
        DeliveryFilter::DeliverEachWithProbability(_) => 3,
        DeliveryFilter::KeepToDestinations(_) => 4,
    }
}

/// Quartile of `value` within `[0, limit)`, clamped into range.
fn quartile(value: u32, limit: u32, bins: usize) -> usize {
    let limit = u64::from(limit.max(1));
    ((u64::from(value) * bins as u64 / limit) as usize).min(bins - 1)
}

impl Coverage {
    /// An all-zero grid.
    pub fn new() -> Self {
        Coverage {
            counts: vec![0; BUCKETS],
        }
    }

    /// Records every crash entry of one explored schedule, normalizing
    /// rounds by `round_budget` and ranks by `n`.
    pub fn record_plan(&mut self, plan: &FaultPlan, n: u32, round_budget: u32) {
        for (node, round, filter) in plan.entries() {
            let idx = shape_index(filter) * ROUND_BINS * RANK_BINS
                + quartile(*round, round_budget, ROUND_BINS) * RANK_BINS
                + quartile(node.0, n, RANK_BINS);
            self.counts[idx] += 1;
        }
    }

    /// Adds another grid's counts into this one (bucket-wise).
    pub fn merge(&mut self, other: &Coverage) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
    }

    /// Buckets with at least one explored entry.
    pub fn covered(&self) -> usize {
        self.counts.iter().filter(|&&c| c > 0).count()
    }

    /// Total explored crash entries.
    pub fn entries(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Fraction of the grid touched, in `[0, 1]`.
    pub fn fraction(&self) -> f64 {
        self.covered() as f64 / BUCKETS as f64
    }

    /// Raw per-bucket counts (shape-major, then round, then rank).
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// JSON encoding. The derived figures ride along for readability; the
    /// counts array is the payload.
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("buckets".into(), Json::UInt(BUCKETS as u64)),
            ("covered".into(), Json::UInt(self.covered() as u64)),
            ("fraction".into(), Json::Num(self.fraction())),
            ("entries".into(), Json::UInt(self.entries())),
            (
                "counts".into(),
                Json::Arr(self.counts.iter().map(|&c| Json::UInt(c)).collect()),
            ),
        ])
    }

    /// Decodes from the [`Coverage::to_json`] form.
    pub fn from_json(v: &Json) -> Result<Self, JsonError> {
        let counts = v
            .field("counts")?
            .as_arr()?
            .iter()
            .map(Json::as_u64)
            .collect::<Result<Vec<_>, _>>()?;
        if counts.len() != BUCKETS {
            return Err(JsonError {
                message: format!(
                    "coverage grid has {} buckets, expected {BUCKETS}",
                    counts.len()
                ),
            });
        }
        Ok(Coverage { counts })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftc_sim::ids::NodeId;

    #[test]
    fn empty_plans_cover_nothing() {
        let mut c = Coverage::new();
        c.record_plan(&FaultPlan::new(), 16, 36);
        assert_eq!(c.covered(), 0);
        assert_eq!(c.entries(), 0);
        assert_eq!(c.fraction(), 0.0);
    }

    #[test]
    fn buckets_follow_round_rank_and_shape() {
        let mut c = Coverage::new();
        // Rank 0, round 0, DeliverAll -> bucket 0.
        c.record_plan(
            &FaultPlan::new().crash(NodeId(0), 0, DeliveryFilter::DeliverAll),
            16,
            36,
        );
        assert_eq!(c.counts()[0], 1);
        // Last rank quartile, last round quartile, KeepToDestinations ->
        // the very last bucket.
        c.record_plan(
            &FaultPlan::new().crash(NodeId(15), 35, DeliveryFilter::KeepToDestinations(vec![])),
            16,
            36,
        );
        assert_eq!(c.counts()[BUCKETS - 1], 1);
        assert_eq!(c.covered(), 2);
        // Out-of-range rounds clamp into the last quartile instead of
        // panicking (shrunk plans can carry round 0 with budget 1).
        c.record_plan(
            &FaultPlan::new().crash(NodeId(3), 99, DeliveryFilter::DropAll),
            16,
            36,
        );
        assert_eq!(c.entries(), 3);
    }

    #[test]
    fn merge_is_bucketwise_addition_and_json_round_trips() {
        let mut a = Coverage::new();
        a.record_plan(
            &FaultPlan::new().crash(NodeId(0), 0, DeliveryFilter::DropAll),
            16,
            36,
        );
        let mut b = Coverage::new();
        b.record_plan(
            &FaultPlan::new()
                .crash(NodeId(0), 0, DeliveryFilter::DropAll)
                .crash(NodeId(8), 20, DeliveryFilter::KeepFirst(2)),
            16,
            36,
        );
        a.merge(&b);
        assert_eq!(a.entries(), 3);
        assert_eq!(a.covered(), 2);
        let back = Coverage::from_json(&Json::parse(&a.to_json().render()).unwrap()).unwrap();
        assert_eq!(back, a);
    }
}
