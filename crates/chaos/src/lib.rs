//! # ftc-chaos — portfolio adversary hunts with coverage accounting
//!
//! A single `ftc hunt` answers one question: does *this* strategy break
//! *this* objective on *this* protocol within *this* budget? The paper's
//! claims are universally quantified — `O(·)` bounds that hold w.h.p.
//! against **every** static crash adversary — so one hunt is an anecdote.
//! This crate turns hunts into campaigns, the same move `ftc-lab` made
//! for measurements:
//!
//! * [`spec`] — a [`HuntCampaignSpec`] declares the full search portfolio
//!   (strategies × objectives × protocols, plus wire-fault cells) as
//!   data, hashed the same way lab specs are;
//! * [`coverage`] — a deterministic projection of every explored
//!   [`FaultPlan`] onto a fixed bucket grid (crash-round quartile ×
//!   victim-rank quartile × delivery-filter shape), so an *empty* hunt
//!   commits a quantified "we looked here" figure rather than silence;
//! * [`run`] — executes every cell via [`run_hunt_observed`], shrinks
//!   each champion, and condenses the portfolio into a record;
//! * [`record`] — the self-describing [`HuntCampaignRecord`]
//!   (`ftc-chaos-record/v1`) persisted next to lab records in the
//!   content-addressed store and byte-compared by `ftc hunt portfolio
//!   gate`;
//! * [`campaigns`] — the named registry (`adversary-portfolio`) the CLI
//!   and CI resolve.
//!
//! Everything is deterministic in `(spec, jobs ignored)`: record ids are
//! `--jobs`-invariant by construction, which is what makes a committed
//! portfolio record a standing CI check.
//!
//! [`HuntCampaignSpec`]: crate::spec::HuntCampaignSpec
//! [`HuntCampaignRecord`]: crate::record::HuntCampaignRecord
//! [`run_hunt_observed`]: ftc_hunt::prelude::run_hunt_observed
//! [`FaultPlan`]: ftc_sim::prelude::FaultPlan

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod campaigns;
pub mod coverage;
pub mod record;
pub mod run;
pub mod spec;

/// Convenience re-exports of the subsystem's surface.
pub mod prelude {
    pub use crate::coverage::Coverage;
    pub use crate::record::{HuntCampaignRecord, HuntCellResult, CHAOS_SCHEMA};
    pub use crate::run::run_hunt_campaign;
    pub use crate::spec::{HuntCampaignSpec, HuntCellSpec};
}
