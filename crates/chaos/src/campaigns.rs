//! Named hunt-portfolio registry.
//!
//! `ftc hunt portfolio run <name>` and CI resolve portfolio names here.
//! Builders are pure functions of their arguments, so a named portfolio's
//! spec hash is stable across machines — which is what lets the committed
//! record in `results/store/` gate a fresh run byte-for-byte.

use ftc_hunt::prelude::{Objective, ProtoKind, Strategy};
use ftc_lab::spec::fnv1a64;

use crate::spec::{HuntCampaignSpec, HuntCellSpec};

/// Seed base for the committed portfolio (never change it without
/// regenerating `results/store/`).
pub const CHAOS_SEED: u64 = 0xC4A0;

/// All registry names, for `ftc hunt portfolio run --help`.
pub fn names() -> &'static [&'static str] {
    &["adversary-portfolio"]
}

/// Resolves a named portfolio at the given scale.
pub fn named(name: &str, smoke: bool) -> Option<HuntCampaignSpec> {
    match name {
        "adversary-portfolio" => Some(adversary_portfolio(smoke)),
        _ => None,
    }
}

/// Every objective each protocol can be hunted under in a single-shot
/// portfolio (`two-leaders-at-height` is the serve-context variant of
/// `two-leaders`, so it is deliberately absent).
fn objectives(proto: ProtoKind) -> &'static [Objective] {
    match proto {
        ProtoKind::Le => &[
            Objective::TwoLeaders,
            Objective::Failure,
            Objective::MaxMessages,
            Objective::MaxRounds,
        ],
        ProtoKind::Agree => &[
            Objective::Disagreement,
            Objective::Failure,
            Objective::MaxMessages,
            Objective::MaxRounds,
        ],
    }
}

/// The full search portfolio: every strategy × every supported objective
/// × both protocols, plus one wire-fault cell per protocol that runs the
/// same search through the socket-level fault injector on the channel
/// substrate. Smoke scale is CI-sized (n=16, budget 32); full scale is
/// the nightly workload (n=64, budget 256).
pub fn adversary_portfolio(smoke: bool) -> HuntCampaignSpec {
    let (n, budget, probes) = if smoke { (16, 32, 2) } else { (64, 256, 3) };
    let wire_budget = if smoke { 16 } else { 64 };
    let mut spec = HuntCampaignSpec::new("adversary-portfolio");
    for proto in [ProtoKind::Le, ProtoKind::Agree] {
        for &objective in objectives(proto) {
            for strategy in [Strategy::Random, Strategy::Guided, Strategy::Anneal] {
                let label = format!("{}-{}-{}", proto.name(), objective.name(), strategy.name());
                let seed = CHAOS_SEED ^ fnv1a64(label.as_bytes());
                spec = spec.cell(HuntCellSpec {
                    label,
                    proto,
                    objective,
                    strategy,
                    n,
                    alpha: 0.5,
                    zeros: 0.05,
                    budget,
                    probes,
                    seed,
                    wire: false,
                });
            }
        }
    }
    // Wire-fault cells: the cost objectives always yield a champion, so
    // these always commit a wire plan worth replaying on sockets.
    for proto in [ProtoKind::Le, ProtoKind::Agree] {
        let label = format!("{}-wire-anneal", proto.name());
        let seed = CHAOS_SEED ^ fnv1a64(label.as_bytes());
        spec = spec.cell(HuntCellSpec {
            label,
            proto,
            objective: Objective::MaxMessages,
            strategy: Strategy::Anneal,
            n,
            alpha: 0.5,
            zeros: 0.05,
            budget: wire_budget,
            probes,
            seed,
            wire: true,
        });
    }
    spec
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn every_name_resolves_at_both_scales() {
        for &name in names() {
            for smoke in [false, true] {
                let spec = named(name, smoke).unwrap();
                assert_eq!(spec.name, name);
                assert!(!spec.cells.is_empty());
            }
        }
        assert!(named("nope", true).is_none());
    }

    #[test]
    fn the_portfolio_spans_the_full_grid() {
        let spec = adversary_portfolio(true);
        // 2 protocols × 4 objectives × 3 strategies + 2 wire cells.
        assert_eq!(spec.cells.len(), 26);
        let labels: HashSet<&str> = spec.cells.iter().map(|c| c.label.as_str()).collect();
        assert_eq!(labels.len(), spec.cells.len(), "labels are distinct");
        let seeds: HashSet<u64> = spec.cells.iter().map(|c| c.seed).collect();
        assert_eq!(seeds.len(), spec.cells.len(), "seeds are distinct");
        for strategy in ["random", "guided", "anneal"] {
            assert!(labels.contains(format!("le-failure-{strategy}").as_str()));
            assert!(labels.contains(format!("agree-disagreement-{strategy}").as_str()));
        }
        assert!(labels.contains("le-wire-anneal"));
        assert!(labels.contains("agree-wire-anneal"));
        // Every cell's objective actually supports its protocol.
        for cell in &spec.cells {
            assert!(cell.objective.supports(cell.proto), "{}", cell.label);
        }
    }

    #[test]
    fn scales_differ_and_hashes_are_reproducible() {
        assert_ne!(
            adversary_portfolio(true).hash(),
            adversary_portfolio(false).hash()
        );
        assert_eq!(
            adversary_portfolio(true).hash(),
            adversary_portfolio(true).hash()
        );
    }

    #[test]
    fn specs_survive_json_round_trip() {
        for smoke in [false, true] {
            let spec = adversary_portfolio(smoke);
            let back = HuntCampaignSpec::from_json(
                &ftc_sim::json::Json::parse(&spec.to_json().render()).unwrap(),
            )
            .unwrap();
            assert_eq!(back.hash(), spec.hash());
        }
    }
}
