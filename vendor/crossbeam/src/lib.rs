//! Offline vendored stand-in for the [`crossbeam`](https://crates.io/crates/crossbeam)
//! crate, exposing the one API this workspace uses: **scoped threads**.
//!
//! Since Rust 1.63 the standard library ships `std::thread::scope`, which
//! provides the same guarantee crossbeam's scoped threads pioneered:
//! spawned threads may borrow from the enclosing stack frame because the
//! scope joins them before returning. This shim maps crossbeam's historical
//! `crossbeam::scope(|s| s.spawn(|_| ...))` surface onto the std
//! implementation.
//!
//! One behavioural difference, documented rather than papered over: if a
//! spawned thread panics, upstream crossbeam returns `Err(payload)` from
//! `scope`, whereas `std::thread::scope` resumes the panic on the scope's
//! thread. Callers here all treat a worker panic as fatal (`.expect(...)`),
//! so the difference is unobservable beyond the panic message.

#![forbid(unsafe_code)]

/// Scoped-thread machinery (`crossbeam::thread` subset).
pub mod thread {
    use std::any::Any;

    /// Result of a scope or a join: `Err` carries a panic payload.
    pub type Result<T> = std::result::Result<T, Box<dyn Any + Send + 'static>>;

    /// A handle to the scope, passed to both the scope closure and (by
    /// crossbeam convention) every spawned thread's closure.
    #[derive(Clone, Copy)]
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    /// A handle awaiting one spawned thread.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        /// Waits for the thread to finish, returning its result (or the
        /// panic payload).
        pub fn join(self) -> Result<T> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread. The closure receives the scope handle so
        /// it can spawn further threads, matching crossbeam's signature.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let handle = *self;
            ScopedJoinHandle {
                inner: self.inner.spawn(move || f(&handle)),
            }
        }
    }

    /// Runs `f` with a scope in which borrowing threads can be spawned; all
    /// spawned threads are joined before this returns.
    pub fn scope<'env, F, R>(f: F) -> Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

pub use thread::scope;

#[cfg(test)]
mod tests {
    #[test]
    fn scoped_threads_can_borrow_locals() {
        let data = vec![1u64, 2, 3, 4];
        let total = std::sync::atomic::AtomicU64::new(0);
        crate::scope(|s| {
            for chunk in data.chunks(2) {
                s.spawn(|_| {
                    let sum: u64 = chunk.iter().sum();
                    total.fetch_add(sum, std::sync::atomic::Ordering::Relaxed);
                });
            }
        })
        .unwrap();
        assert_eq!(total.into_inner(), 10);
    }

    #[test]
    fn nested_spawn_through_the_handle_works() {
        let hit = std::sync::atomic::AtomicBool::new(false);
        crate::scope(|s| {
            s.spawn(|inner| {
                inner.spawn(|_| hit.store(true, std::sync::atomic::Ordering::SeqCst));
            });
        })
        .unwrap();
        assert!(hit.into_inner());
    }

    #[test]
    fn join_returns_thread_value() {
        let v = crate::scope(|s| s.spawn(|_| 7u32).join().unwrap()).unwrap();
        assert_eq!(v, 7);
    }
}
