//! Offline vendored stand-in for the [`mio`](https://crates.io/crates/mio)
//! crate, exposing the readiness-loop subset this workspace uses:
//! [`Poll`] / [`Registry`] / [`Events`] / [`Token`] / [`Interest`] and a
//! nonblocking [`net::TcpStream`].
//!
//! Upstream mio wraps the OS selector (epoll/kqueue). This shim keeps the
//! API shape but stays inside `std` with no unsafe and no libc: readiness
//! is detected by sweeping the registered sockets with nonblocking
//! `peek`, micro-sleeping between sweeps until something is ready or the
//! poll timeout expires. Honest consequences of that substitution:
//!
//! * **Readable** means "`peek` returned data, EOF, or a hard error" —
//!   exactly the cases where a `read` will make progress.
//! * **Writable** is reported level-triggered and optimistically: a
//!   registered-for-write socket is always offered as writable, and
//!   callers discover a full send buffer through `WouldBlock` on `write`
//!   (which is how well-behaved mio code handles spurious readiness
//!   anyway).
//! * Wakeup latency is the sweep interval (~0.5 ms) instead of an epoll
//!   wakeup. For round-synchronous cluster traffic this is in the noise;
//!   it would not be for a latency-critical proxy.
//!
//! The trade buys the same thing as the other `vendor/` shims: the whole
//! workspace builds offline with `--locked` and zero registry access.

#![forbid(unsafe_code)]

use std::io;
use std::time::{Duration, Instant};

/// How long one sweep sleeps when nothing is ready. Chosen well below a
/// round's wall time so the poll loop never becomes the bottleneck, and
/// well above a spin so idle procs do not burn a core.
const SWEEP_INTERVAL: Duration = Duration::from_micros(500);

/// Networking primitives registrable with a [`Poll`].
pub mod net {
    use std::io::{self, Read, Write};
    use std::net::{Shutdown, SocketAddr};

    /// A nonblocking TCP stream (upstream: `mio::net::TcpStream`).
    #[derive(Debug)]
    pub struct TcpStream {
        inner: std::net::TcpStream,
    }

    impl TcpStream {
        /// Adopts a std stream, switching it to nonblocking mode (upstream
        /// requires the caller to have done so; doing it here removes the
        /// one footgun this shim could inherit).
        pub fn from_std(stream: std::net::TcpStream) -> TcpStream {
            let _ = stream.set_nonblocking(true);
            TcpStream { inner: stream }
        }

        /// Receives data without consuming it; the readiness probe.
        pub fn peek(&self, buf: &mut [u8]) -> io::Result<usize> {
            self.inner.peek(buf)
        }

        /// The address of the remote half.
        pub fn peer_addr(&self) -> io::Result<SocketAddr> {
            self.inner.peer_addr()
        }

        /// Shuts down read, write, or both halves.
        pub fn shutdown(&self, how: Shutdown) -> io::Result<()> {
            self.inner.shutdown(how)
        }

        /// A second handle to the same socket (used by the registry).
        pub fn try_clone(&self) -> io::Result<TcpStream> {
            Ok(TcpStream {
                inner: self.inner.try_clone()?,
            })
        }

        /// Disables Nagle's algorithm.
        pub fn set_nodelay(&self, nodelay: bool) -> io::Result<()> {
            self.inner.set_nodelay(nodelay)
        }
    }

    impl Read for TcpStream {
        fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
            self.inner.read(buf)
        }
    }

    impl Read for &TcpStream {
        fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
            (&self.inner).read(buf)
        }
    }

    impl Write for TcpStream {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            self.inner.write(buf)
        }
        fn flush(&mut self) -> io::Result<()> {
            self.inner.flush()
        }
    }

    impl Write for &TcpStream {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            (&self.inner).write(buf)
        }
        fn flush(&mut self) -> io::Result<()> {
            (&self.inner).flush()
        }
    }
}

/// Caller-chosen identifier returned with every event.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Token(pub usize);

/// Which readiness a registration asks for.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Interest {
    readable: bool,
    writable: bool,
}

impl Interest {
    /// Interest in read readiness.
    pub const READABLE: Interest = Interest {
        readable: true,
        writable: false,
    };
    /// Interest in write readiness.
    pub const WRITABLE: Interest = Interest {
        readable: false,
        writable: true,
    };

    /// Combines two interests (upstream spells this `|`, via `BitOr` —
    /// also provided — or `add`).
    #[allow(clippy::should_implement_trait)] // upstream mio's method name
    pub fn add(self, other: Interest) -> Interest {
        Interest {
            readable: self.readable || other.readable,
            writable: self.writable || other.writable,
        }
    }

    /// Whether read readiness is requested.
    pub fn is_readable(self) -> bool {
        self.readable
    }

    /// Whether write readiness is requested.
    pub fn is_writable(self) -> bool {
        self.writable
    }
}

impl std::ops::BitOr for Interest {
    type Output = Interest;
    fn bitor(self, rhs: Interest) -> Interest {
        self.add(rhs)
    }
}

/// One readiness event.
#[derive(Clone, Copy, Debug)]
pub struct Event {
    token: Token,
    readable: bool,
    writable: bool,
}

impl Event {
    /// The token the source was registered with.
    pub fn token(&self) -> Token {
        self.token
    }
    /// The source will make progress on a `read`.
    pub fn is_readable(&self) -> bool {
        self.readable
    }
    /// The source is offered for writing (see the module docs for this
    /// shim's optimistic semantics).
    pub fn is_writable(&self) -> bool {
        self.writable
    }
}

/// A batch of events filled by [`Poll::poll`].
#[derive(Debug, Default)]
pub struct Events {
    inner: Vec<Event>,
    capacity: usize,
}

impl Events {
    /// An event buffer holding at most `capacity` events per poll.
    pub fn with_capacity(capacity: usize) -> Events {
        Events {
            inner: Vec::with_capacity(capacity),
            capacity: capacity.max(1),
        }
    }

    /// Iterates the events of the last poll.
    pub fn iter(&self) -> std::slice::Iter<'_, Event> {
        self.inner.iter()
    }

    /// No events were ready.
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }
}

impl<'a> IntoIterator for &'a Events {
    type Item = &'a Event;
    type IntoIter = std::slice::Iter<'a, Event>;
    fn into_iter(self) -> Self::IntoIter {
        self.inner.iter()
    }
}

struct Registration {
    token: Token,
    interest: Interest,
    stream: net::TcpStream,
}

/// Where event sources are registered (upstream: `mio::Registry`).
///
/// Registration takes `&self` like upstream; the interior mutability is a
/// plain `RefCell` because a `Poll` (and thus its registry) lives on one
/// thread — this shim does not support upstream's cross-thread `Registry`
/// cloning, which nothing in this workspace uses.
#[derive(Default)]
pub struct Registry {
    entries: std::cell::RefCell<Vec<Registration>>,
}

impl Registry {
    /// Registers `stream` for `interest`, reported under `token`. The
    /// registry keeps its own handle to the socket (`try_clone`), so the
    /// caller retains ownership of `stream`.
    pub fn register(
        &self,
        stream: &net::TcpStream,
        token: Token,
        interest: Interest,
    ) -> io::Result<()> {
        self.entries.borrow_mut().push(Registration {
            token,
            interest,
            stream: stream.try_clone()?,
        });
        Ok(())
    }

    /// Removes every registration under `token`.
    pub fn deregister(&self, token: Token) {
        self.entries.borrow_mut().retain(|r| r.token != token);
    }

    fn sweep(&self, events: &mut Events) {
        let entries = self.entries.borrow();
        let mut probe = [0u8; 1];
        for reg in entries.iter() {
            if events.inner.len() >= events.capacity {
                break;
            }
            let readable = reg.interest.is_readable()
                && match reg.stream.peek(&mut probe) {
                    Ok(_) => true, // data, or EOF (read will see Ok(0))
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => false,
                    Err(_) => true, // hard error: let the read surface it
                };
            let writable = reg.interest.is_writable();
            // Readable events carry the registration's write interest as
            // optimistic writability; a writable-only registration is
            // always ready (see the module docs — callers learn the truth
            // from `WouldBlock` on write, as with any spurious readiness).
            if readable || (writable && !reg.interest.is_readable()) {
                events.inner.push(Event {
                    token: reg.token,
                    readable,
                    writable,
                });
            }
        }
    }
}

/// The selector (upstream: `mio::Poll`).
#[derive(Default)]
pub struct Poll {
    registry: Registry,
}

impl Poll {
    /// A fresh poll instance.
    pub fn new() -> io::Result<Poll> {
        Ok(Poll::default())
    }

    /// The registry sources are registered with.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// Fills `events` with ready sources, waiting up to `timeout` (forever
    /// when `None`). Returns with an empty `events` on timeout — same
    /// contract as upstream.
    pub fn poll(&mut self, events: &mut Events, timeout: Option<Duration>) -> io::Result<()> {
        events.inner.clear();
        let start = Instant::now();
        loop {
            self.registry.sweep(events);
            if !events.is_empty() {
                return Ok(());
            }
            if let Some(limit) = timeout {
                let elapsed = start.elapsed();
                if elapsed >= limit {
                    return Ok(());
                }
                std::thread::sleep(SWEEP_INTERVAL.min(limit - elapsed));
            } else {
                std::thread::sleep(SWEEP_INTERVAL);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::{TcpListener, TcpStream as StdStream};

    fn pair() -> (net::TcpStream, net::TcpStream) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let a = StdStream::connect(addr).unwrap();
        let (b, _) = listener.accept().unwrap();
        (net::TcpStream::from_std(a), net::TcpStream::from_std(b))
    }

    #[test]
    fn poll_reports_readable_when_bytes_arrive() {
        let (a, mut b) = pair();
        let mut poll = Poll::new().unwrap();
        poll.registry()
            .register(&a, Token(7), Interest::READABLE)
            .unwrap();
        let mut events = Events::with_capacity(8);

        // Nothing queued: the poll times out empty.
        poll.poll(&mut events, Some(Duration::from_millis(5)))
            .unwrap();
        assert!(events.is_empty());

        b.write_all(b"ping").unwrap();
        poll.poll(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        let tokens: Vec<Token> = events.iter().map(|e| e.token()).collect();
        assert_eq!(tokens, vec![Token(7)]);
        let mut buf = [0u8; 4];
        let mut reader = &a;
        reader.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"ping");
    }

    #[test]
    fn peer_close_reads_as_readable_eof() {
        let (a, b) = pair();
        let mut poll = Poll::new().unwrap();
        poll.registry()
            .register(&a, Token(1), Interest::READABLE)
            .unwrap();
        drop(b);
        let mut events = Events::with_capacity(4);
        poll.poll(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert!(!events.is_empty());
        let mut reader = &a;
        let mut buf = [0u8; 1];
        assert_eq!(reader.read(&mut buf).unwrap(), 0, "EOF after close");
    }

    #[test]
    fn nonblocking_reads_would_block_when_idle() {
        let (a, _b) = pair();
        let mut reader = &a;
        let mut buf = [0u8; 1];
        let err = reader.read(&mut buf).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::WouldBlock);
    }

    #[test]
    fn interest_combinators_behave_like_flags() {
        let both = Interest::READABLE | Interest::WRITABLE;
        assert!(both.is_readable() && both.is_writable());
        assert!(!Interest::WRITABLE.is_readable());
    }

    #[test]
    fn deregister_silences_a_source() {
        let (a, mut b) = pair();
        let mut poll = Poll::new().unwrap();
        poll.registry()
            .register(&a, Token(3), Interest::READABLE)
            .unwrap();
        poll.registry().deregister(Token(3));
        b.write_all(b"x").unwrap();
        let mut events = Events::with_capacity(4);
        poll.poll(&mut events, Some(Duration::from_millis(10)))
            .unwrap();
        assert!(events.is_empty());
    }
}
