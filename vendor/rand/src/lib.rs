//! Offline vendored stand-in for the [`rand`](https://crates.io/crates/rand)
//! crate.
//!
//! The workspace pinned `rand = "0.10"`, which does not exist on crates.io,
//! and the build environment has no registry access at all. Rather than gate
//! every simulator feature on an unavailable dependency, this crate vendors
//! the *exact API subset the workspace uses* — nothing more:
//!
//! * [`rngs::SmallRng`] — a small, fast, seedable PRNG (xoshiro256++, the
//!   same algorithm real `rand` uses for `SmallRng` on 64-bit targets);
//! * [`SeedableRng::seed_from_u64`] — SplitMix64 seed expansion, as upstream;
//! * [`Rng::random`], [`Rng::random_range`], [`Rng::random_bool`] — the
//!   post-0.9 method names the codebase is written against;
//! * [`seq::index::sample`] — uniform index sampling without replacement.
//!
//! Determinism is the only contract the simulator relies on: every stream is
//! a pure function of its seed, and that holds here exactly as it does
//! upstream. Statistical quality matches upstream's `SmallRng` (it is the
//! same generator); the distributions are *not* guaranteed to be
//! bit-identical to upstream's, which is irrelevant to the experiments as
//! all published numbers are (re)generated with this implementation.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

pub mod rngs;
pub mod seq;

/// Convenient glob import, mirroring `rand::prelude`.
pub mod prelude {
    pub use crate::rngs::SmallRng;
    pub use crate::{Rng, SeedableRng};
}

/// Types that can seed themselves from a `u64`.
pub trait SeedableRng: Sized {
    /// Builds a generator whose entire stream is determined by `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// A source of randomness plus the derived sampling methods the workspace
/// uses. Method names follow `rand` ≥ 0.9 (`random*`, not `gen*`).
pub trait Rng {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly random bits (upper half of [`Rng::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// A uniformly random value of a standard-distributable type.
    fn random<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// A uniformly random value in `range` (half-open or inclusive).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn random_range<T, R>(&mut self, range: R) -> T
    where
        Self: Sized,
        R: SampleRange<T>,
    {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 ≤ p ≤ 1`.
    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "probability {p} outside [0,1]");
        f64_from_bits(self.next_u64()) < p
    }
}

/// A uniform `f64` in `[0, 1)` from 53 random bits.
#[inline]
fn f64_from_bits(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Uniform integer in `[0, span)` by Lemire's widening-multiply rejection
/// method (unbiased). `span == 0` means the full `u64` domain.
#[inline]
pub(crate) fn uniform_u64<R: Rng + ?Sized>(rng: &mut R, span: u64) -> u64 {
    if span == 0 {
        return rng.next_u64();
    }
    let mut m = u128::from(rng.next_u64()) * u128::from(span);
    let mut lo = m as u64;
    if lo < span {
        let threshold = span.wrapping_neg() % span;
        while lo < threshold {
            m = u128::from(rng.next_u64()) * u128::from(span);
            lo = m as u64;
        }
    }
    (m >> 64) as u64
}

/// Types producible uniformly from raw generator output ("standard"
/// distribution in `rand` terms).
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            #[inline]
            fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    #[inline]
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    #[inline]
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        f64_from_bits(rng.next_u64())
    }
}

/// Ranges that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draws one value in the range from `rng`.
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add(uniform_u64(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            #[inline]
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range");
                // span == 0 encodes the full 2^64 domain for u64/usize.
                let span = (end as u64)
                    .wrapping_sub(start as u64)
                    .wrapping_add(1);
                start.wrapping_add(uniform_u64(rng, span) as $t)
            }
        }
    )*};
}
impl_sample_range_int!(u8, u16, u32, u64, usize);

impl SampleRange<f64> for Range<f64> {
    #[inline]
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range");
        self.start + (self.end - self.start) * f64_from_bits(rng.next_u64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::SmallRng;

    #[test]
    fn seeded_streams_are_deterministic_and_distinct() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(1);
        let mut c = SmallRng::seed_from_u64(2);
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let vc: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn random_range_stays_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: u32 = rng.random_range(10..20);
            assert!((10..20).contains(&x));
            let y: u64 = rng.random_range(5..=5);
            assert_eq!(y, 5);
            let z: u8 = rng.random_range(0..4u8);
            assert!(z < 4);
            let f: f64 = rng.random_range(-1.0..1.0);
            assert!((-1.0..1.0).contains(&f));
        }
    }

    #[test]
    fn range_sampling_is_roughly_uniform() {
        let mut rng = SmallRng::seed_from_u64(42);
        let mut counts = [0u32; 8];
        for _ in 0..80_000 {
            counts[rng.random_range(0..8usize)] += 1;
        }
        for &c in &counts {
            assert!((9_000..11_000).contains(&c), "skewed bucket: {counts:?}");
        }
    }

    #[test]
    fn random_bool_matches_probability() {
        let mut rng = SmallRng::seed_from_u64(3);
        let hits = (0..100_000).filter(|_| rng.random_bool(0.3)).count();
        assert!((28_000..32_000).contains(&hits), "p=0.3 gave {hits}/100000");
        assert!(!rng.random_bool(0.0));
        assert!(rng.random_bool(1.0));
    }

    #[test]
    #[should_panic(expected = "outside [0,1]")]
    fn random_bool_rejects_bad_probability() {
        let mut rng = SmallRng::seed_from_u64(3);
        rng.random_bool(1.5);
    }

    #[test]
    fn full_u64_inclusive_range_works() {
        let mut rng = SmallRng::seed_from_u64(11);
        // span wraps to 0 — must not panic or loop forever.
        let _: u64 = rng.random_range(0..=u64::MAX);
    }
}
