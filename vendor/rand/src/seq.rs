//! Sequence sampling helpers (`rand::seq` subset).

/// Index sampling without replacement (`rand::seq::index` subset).
pub mod index {
    use crate::{uniform_u64, Rng};

    /// Distinct indices drawn from `0..length`, in sampling order.
    #[derive(Clone, Debug)]
    pub struct IndexVec(Vec<usize>);

    impl IndexVec {
        /// Number of sampled indices.
        pub fn len(&self) -> usize {
            self.0.len()
        }

        /// Whether the sample is empty.
        pub fn is_empty(&self) -> bool {
            self.0.is_empty()
        }

        /// Iterates over the sampled indices.
        pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
            self.0.iter().copied()
        }

        /// Consumes the sample into a plain vector.
        pub fn into_vec(self) -> Vec<usize> {
            self.0
        }
    }

    impl IntoIterator for IndexVec {
        type Item = usize;
        type IntoIter = std::vec::IntoIter<usize>;
        fn into_iter(self) -> Self::IntoIter {
            self.0.into_iter()
        }
    }

    /// Samples `amount` distinct indices uniformly from `0..length`.
    ///
    /// Small samples use Floyd's algorithm (`O(amount²)` scans but no
    /// `O(length)` allocation); large samples use a partial Fisher–Yates
    /// shuffle. Both are uniform over subsets.
    ///
    /// # Panics
    ///
    /// Panics if `amount > length`.
    pub fn sample<R: Rng + ?Sized>(rng: &mut R, length: usize, amount: usize) -> IndexVec {
        assert!(
            amount <= length,
            "cannot sample {amount} of {length} indices"
        );
        // Crossover mirrors upstream's heuristic: Floyd's combination
        // sampling when the sample is a small fraction of the domain.
        if amount * 8 < length {
            let mut picked: Vec<usize> = Vec::with_capacity(amount);
            for j in (length - amount)..length {
                let t = uniform_u64(rng, (j + 1) as u64) as usize;
                if picked.contains(&t) {
                    picked.push(j);
                } else {
                    picked.push(t);
                }
            }
            IndexVec(picked)
        } else {
            let mut pool: Vec<usize> = (0..length).collect();
            for i in 0..amount {
                let j = i + uniform_u64(rng, (length - i) as u64) as usize;
                pool.swap(i, j);
            }
            pool.truncate(amount);
            IndexVec(pool)
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;
        use crate::rngs::SmallRng;
        use crate::SeedableRng;

        #[test]
        fn samples_are_distinct_and_in_range() {
            let mut rng = SmallRng::seed_from_u64(5);
            for &(length, amount) in &[(10usize, 10usize), (1000, 5), (64, 60), (1, 1), (9, 0)] {
                let s = sample(&mut rng, length, amount);
                assert_eq!(s.len(), amount);
                let mut v = s.into_vec();
                v.sort_unstable();
                v.dedup();
                assert_eq!(v.len(), amount, "duplicates for ({length},{amount})");
                assert!(v.iter().all(|&i| i < length));
            }
        }

        #[test]
        fn every_index_is_reachable() {
            let mut rng = SmallRng::seed_from_u64(6);
            let mut hit = [false; 20];
            for _ in 0..400 {
                for i in sample(&mut rng, 20, 2) {
                    hit[i] = true;
                }
            }
            assert!(hit.iter().all(|&h| h), "unreachable indices: {hit:?}");
        }

        #[test]
        #[should_panic(expected = "cannot sample")]
        fn oversampling_panics() {
            let mut rng = SmallRng::seed_from_u64(5);
            sample(&mut rng, 3, 4);
        }
    }
}
