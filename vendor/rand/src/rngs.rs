//! Concrete generators. Only [`SmallRng`] is provided — the single
//! generator the simulator uses.

use crate::{Rng, SeedableRng};

/// xoshiro256++ — the algorithm upstream `rand` uses for `SmallRng` on
/// 64-bit platforms. Small state, excellent statistical quality, and very
/// fast; **not** cryptographically secure, exactly like upstream.
#[derive(Clone, Debug)]
pub struct SmallRng {
    s: [u64; 4],
}

impl SeedableRng for SmallRng {
    /// SplitMix64 seed expansion (upstream's scheme): four successive
    /// SplitMix64 outputs initialise the state, which is never all-zero.
    fn seed_from_u64(state: u64) -> Self {
        let mut sm = state;
        let mut next = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        SmallRng {
            s: [next(), next(), next(), next()],
        }
    }
}

impl Rng for SmallRng {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn state_is_never_all_zero() {
        // SplitMix64 of any seed produces a non-degenerate state.
        for seed in [0u64, 1, u64::MAX] {
            let rng = SmallRng::seed_from_u64(seed);
            assert_ne!(rng.s, [0, 0, 0, 0]);
        }
    }

    #[test]
    fn output_passes_a_crude_bit_balance_check() {
        let mut rng = SmallRng::seed_from_u64(99);
        let ones: u32 = (0..1000).map(|_| rng.next_u64().count_ones()).sum();
        // 64_000 bits, expect ~32_000 ones; 6 sigma ≈ 760.
        assert!((31_000..33_000).contains(&ones), "bit bias: {ones}");
    }
}
