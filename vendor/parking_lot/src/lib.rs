//! Offline vendored stand-in for [`parking_lot`](https://crates.io/crates/parking_lot),
//! exposing the guard-style `Mutex`/`RwLock` API over `std::sync`.
//!
//! Differences from upstream that matter here: none. Upstream's advantages
//! (smaller locks, no poisoning, fairness) are performance/ergonomic, not
//! semantic; this shim neutralises poisoning by unwrapping into the inner
//! guard, which matches parking_lot's "poisoning does not exist" contract.

#![forbid(unsafe_code)]

use std::sync::{self, PoisonError};

/// A mutual-exclusion lock with parking_lot's panic-free `lock()` API.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

/// RAII guard for [`Mutex`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available. Unlike `std`, never
    /// returns a poison error (parking_lot semantics).
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// A reader–writer lock with parking_lot's panic-free API.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

/// Shared-read guard for [`RwLock`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Exclusive-write guard for [`RwLock`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates a lock protecting `value`.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the protected value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires an exclusive write lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(vec![1, 2]);
        m.lock().push(3);
        assert_eq!(m.into_inner(), vec![1, 2, 3]);
    }

    #[test]
    fn rwlock_readers_and_writer() {
        let l = RwLock::new(5u32);
        {
            let r1 = l.read();
            let r2 = l.read();
            assert_eq!(*r1 + *r2, 10);
        }
        *l.write() += 1;
        assert_eq!(l.into_inner(), 6);
    }

    #[test]
    fn lock_survives_a_poisoning_panic() {
        let m = std::sync::Arc::new(Mutex::new(0u32));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        // parking_lot semantics: the lock is still usable afterwards.
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }
}
