//! Offline vendored stand-in for [`criterion`](https://crates.io/crates/criterion).
//!
//! The workspace pinned `criterion = "0.8"`, which is unavailable in the
//! offline build environment, so this crate provides the macro/builder
//! surface the benches use (`criterion_group!`, `criterion_main!`,
//! `Criterion::benchmark_group`, `bench_function`, `bench_with_input`,
//! `BenchmarkId`) on top of a deliberately simple wall-clock harness:
//!
//! * one warm-up iteration, then `sample_size` timed iterations;
//! * reports min / mean / max per-iteration time to stdout;
//! * benchmarks only execute under `cargo bench` (cargo passes `--bench` to
//!   `harness = false` targets). Under `cargo test`, which also builds and
//!   runs these executables, every benchmark is skipped so the test suite
//!   stays fast.
//!
//! No statistics, plots, or baselines — this is a smoke-and-stopwatch
//! harness, good enough to compare orders of magnitude and to keep the
//! bench targets compiling and honest in CI.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifier of one benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// A two-part id, rendered `function/parameter`.
    pub fn new(function: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{function}/{parameter}"),
        }
    }

    /// An id that is just the parameter, e.g. a network size.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { label: s.into() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { label: s }
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    sample_size: usize,
    /// Mean per-iteration time of the last `iter` call, if any.
    last: Option<Sample>,
}

#[derive(Clone, Copy, Debug)]
struct Sample {
    min: Duration,
    mean: Duration,
    max: Duration,
}

impl Bencher {
    /// Times `routine`: one warm-up call, then `sample_size` measured calls.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        black_box(routine());
        let mut min = Duration::MAX;
        let mut max = Duration::ZERO;
        let mut total = Duration::ZERO;
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(routine());
            let dt = start.elapsed();
            min = min.min(dt);
            max = max.max(dt);
            total += dt;
        }
        self.last = Some(Sample {
            min,
            mean: total / self.sample_size as u32,
            max,
        });
    }
}

/// The harness entry point, mirroring upstream's type of the same name.
pub struct Criterion {
    enabled: bool,
    filter: Option<String>,
}

impl Default for Criterion {
    /// Parses the CLI: benchmarks run only when cargo passed `--bench`
    /// (i.e. under `cargo bench`); a positional argument filters by name.
    fn default() -> Self {
        let mut enabled = false;
        let mut filter = None;
        for arg in std::env::args().skip(1) {
            match arg.as_str() {
                "--bench" => enabled = true,
                a if !a.starts_with('-') => filter = Some(a.to_string()),
                _ => {}
            }
        }
        Criterion { enabled, filter }
    }
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 10,
        }
    }

    /// Benches a standalone function (an implicit single-entry group).
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut g = self.benchmark_group(id.label.clone());
        g.bench_function("", f);
        g.finish();
        self
    }

    fn should_run(&self, full_name: &str) -> bool {
        self.enabled
            && self
                .filter
                .as_deref()
                .map_or(true, |f| full_name.contains(f))
    }
}

/// A group of benchmarks sharing a name prefix and sample size.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl<'a> BenchmarkGroup<'a> {
    /// Sets the number of timed iterations per benchmark.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = n;
        self
    }

    /// Runs one benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let full = if id.label.is_empty() {
            self.name.clone()
        } else {
            format!("{}/{}", self.name, id.label)
        };
        if !self.criterion.should_run(&full) {
            return self;
        }
        let mut b = Bencher {
            sample_size: self.sample_size,
            last: None,
        };
        f(&mut b);
        match b.last {
            Some(s) => println!(
                "{full:<48} min {:>12?}  mean {:>12?}  max {:>12?}  ({} iters)",
                s.min, s.mean, s.max, self.sample_size
            ),
            None => println!("{full:<48} (no measurement: closure never called iter)"),
        }
        self
    }

    /// Runs one parameterised benchmark in this group.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    /// Ends the group (upstream flushes reports here; a no-op for us).
    pub fn finish(self) {}
}

/// Declares a bench group function, mirroring upstream's simple form.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench `main`, mirroring upstream.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_harness_skips_benchmarks() {
        // Unit tests are not invoked with --bench, so nothing may run.
        let mut c = Criterion::default();
        assert!(!c.enabled);
        let mut ran = false;
        c.bench_function("never", |b| {
            ran = true;
            b.iter(|| 1 + 1);
        });
        assert!(!ran, "benchmark executed without --bench");
    }

    #[test]
    fn bencher_records_all_samples() {
        let mut b = Bencher {
            sample_size: 5,
            last: None,
        };
        let mut calls = 0u32;
        b.iter(|| calls += 1);
        assert_eq!(calls, 6, "1 warm-up + 5 samples");
        let s = b.last.expect("sample recorded");
        assert!(s.min <= s.mean && s.mean <= s.max);
    }

    #[test]
    fn benchmark_ids_render_like_upstream() {
        assert_eq!(BenchmarkId::new("f", 32).label, "f/32");
        assert_eq!(BenchmarkId::from_parameter("alpha_0.5").label, "alpha_0.5");
    }
}
